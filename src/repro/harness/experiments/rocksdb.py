"""RocksDB (db_bench) experiments: Figs. 7a–7d, 8a, 10 and Table 5."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.configs import MachineConfig, Scale
from repro.harness.report import format_matrix, format_table
from repro.harness.runner import run_approaches
from repro.os.config import KernelConfig
from repro.workloads.dbbench import DbBenchConfig, run_dbbench
from repro.workloads.lsm import DbConfig

__all__ = [
    "run_fig10_prefetch_limit",
    "run_fig7a_threads",
    "run_fig7b_patterns",
    "run_fig7c_memory",
    "run_fig7d_f2fs",
    "run_fig8a_remote",
    "run_tab5_breakdown",
]

KB = 1 << 10
MB = 1 << 20

APPROACHES = ("APPonly", "OSonly", "CrossP[+predict]",
              "CrossP[+predict+opt]", "CrossP[+fetchall+opt]")

PATTERNS = ("readseq", "readreverse", "readrandom", "multireadrandom",
            "readwhilescanning")

# db_bench "reads a 120 GB database" on the 80 GB testbed; the default
# scaled shape below keeps DB ≈ 0.8x memory of the Fig. 7a runs.
DEFAULT_KEYS = 300_000
DEFAULT_MEM = 512 * MB


def _dbbench_workload(pattern: str, nthreads: int, ops: int,
                      num_keys: int):
    def workload(kernel, runtime):
        cfg = DbBenchConfig(pattern=pattern, nthreads=nthreads,
                            ops_per_thread=ops,
                            db=DbConfig(num_keys=num_keys))
        return run_dbbench(kernel, runtime, cfg)
    return workload


def run_fig7a_threads(thread_counts: Sequence[int] = (2, 4, 8, 16),
                      ops_per_thread: int = 400,
                      num_keys: int = DEFAULT_KEYS,
                      memory_bytes: int = DEFAULT_MEM,
                      approaches: Sequence[str] = APPROACHES
                      ) -> tuple[dict, str]:
    """multireadrandom throughput vs thread count.

    Like db_bench, each thread performs a fixed number of batched ops,
    so higher thread counts do proportionally more work — the y-axis is
    aggregate throughput.
    """
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results = {}
    for nthreads in thread_counts:
        machine = MachineConfig.local_ext4(Scale())
        results = run_approaches(
            machine, approaches,
            _dbbench_workload("multireadrandom", nthreads,
                              ops_per_thread, num_keys),
            memory_bytes=memory_bytes)
        all_results[str(nthreads)] = results
        for approach, metrics in results.items():
            series[approach][str(nthreads)] = metrics.kops
    report = format_matrix(
        "Fig. 7a — multireadrandom kops/s vs thread count",
        series, xlabel="threads ->", fmt="{:>10.1f}")
    return all_results, report


def run_fig7b_patterns(nthreads: int = 8,
                       num_keys: int = DEFAULT_KEYS,
                       memory_bytes: int = DEFAULT_MEM,
                       machine: Optional[MachineConfig] = None,
                       approaches: Sequence[str] = APPROACHES,
                       title: str = "Fig. 7b — db_bench access patterns "
                                    "(kops/s, ext4 local)",
                       ops_scale: float = 1.0
                       ) -> tuple[dict, str]:
    """Throughput per access pattern (also reused for 7d / 8a).

    ``ops_scale`` scales the per-pattern op counts down for smoke runs
    (``repro check`` / ``--quick``); 1.0 is the paper-faithful length.
    """
    # Long enough that the aggressive modes reach steady state (short
    # runs only measure their bulk-load ramp).
    ops_for = {"readseq": 1, "readreverse": 1, "readrandom": 2500,
               "multireadrandom": 400, "readwhilescanning": 1200}
    if ops_scale != 1.0:
        ops_for = {p: max(1, int(n * ops_scale))
                   for p, n in ops_for.items()}
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results = {}
    for pattern in PATTERNS:
        mach = machine or MachineConfig.local_ext4(Scale())
        results = run_approaches(
            mach, approaches,
            _dbbench_workload(pattern, nthreads, ops_for[pattern],
                              num_keys),
            memory_bytes=memory_bytes)
        all_results[pattern] = results
        for approach, metrics in results.items():
            series[approach][pattern] = metrics.kops
    report = format_matrix(title, series, xlabel="approach",
                           fmt="{:>10.1f}")
    return all_results, report


def run_fig7c_memory(ratios: Sequence[str] = ("1:6", "1:3", "1:2", "1:1"),
                     nthreads: int = 8,
                     ops_per_thread: int = 600,
                     num_keys: int = DEFAULT_KEYS,
                     approaches: Sequence[str] = APPROACHES
                     ) -> tuple[dict, str]:
    """multireadrandom vs memory:DB-size ratio (1:6 = memory is DB/6)."""
    db_bytes = num_keys * DbConfig().value_size
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results = {}
    for ratio in ratios:
        num, den = (int(p) for p in ratio.split(":"))
        memory_bytes = max(32 * MB, db_bytes * num // den)
        machine = MachineConfig.local_ext4(Scale())
        results = run_approaches(
            machine, approaches,
            _dbbench_workload("multireadrandom", nthreads,
                              ops_per_thread, num_keys),
            memory_bytes=memory_bytes)
        all_results[ratio] = results
        for approach, metrics in results.items():
            series[approach][ratio] = metrics.kops
    report = format_matrix(
        "Fig. 7c — multireadrandom kops/s vs memory:DB ratio",
        series, xlabel="mem:db ->", fmt="{:>10.1f}")
    return all_results, report


def run_fig7d_f2fs(nthreads: int = 8,
                   num_keys: int = DEFAULT_KEYS,
                   memory_bytes: int = DEFAULT_MEM,
                   approaches: Sequence[str] = APPROACHES,
                   ops_scale: float = 1.0
                   ) -> tuple[dict, str]:
    machine = MachineConfig.local_f2fs(Scale())
    return run_fig7b_patterns(
        nthreads=nthreads, num_keys=num_keys, memory_bytes=memory_bytes,
        machine=machine, approaches=approaches,
        title="Fig. 7d — db_bench access patterns (kops/s, F2FS)",
        ops_scale=ops_scale)


def run_fig8a_remote(nthreads: int = 8,
                     num_keys: int = DEFAULT_KEYS,
                     memory_bytes: int = DEFAULT_MEM,
                     approaches: Sequence[str] = APPROACHES,
                     ops_scale: float = 1.0
                     ) -> tuple[dict, str]:
    machine = MachineConfig.remote_nvmeof(Scale())
    return run_fig7b_patterns(
        nthreads=nthreads, num_keys=num_keys, memory_bytes=memory_bytes,
        machine=machine, approaches=approaches,
        title="Fig. 8a — db_bench access patterns (kops/s, "
              "remote NVMe-oF)",
        ops_scale=ops_scale)


def run_tab5_breakdown(nthreads: int = 8,
                       ops_per_thread: int = 600,
                       num_keys: int = DEFAULT_KEYS,
                       memory_bytes: int = DEFAULT_MEM
                       ) -> tuple[dict, str]:
    """Incremental ablation, multireadrandom (paper: 32 threads)."""
    steps = ("APPonly", "OSonly", "CrossP[+visibility]",
             "CrossP[+visibility+rangetree]",
             "CrossP[+visibility+rangetree+aggr]")
    machine = MachineConfig.local_ext4(Scale())
    results = run_approaches(
        machine, steps,
        _dbbench_workload("multireadrandom", nthreads, ops_per_thread,
                          num_keys),
        memory_bytes=memory_bytes)
    report = format_table(
        "Table 5 — Breakdown of CrossPrefetch incremental gains "
        "(multireadrandom)",
        results,
        columns=[
            ("kops/s", lambda m: f"{m.kops:10.1f}"),
            ("miss%", lambda m: f"{m.miss_pct:6.1f}"),
            ("lock%", lambda m: f"{m.lock_pct:6.1f}"),
        ],
        note="Paper: 1688 -> 1834 -> 2143 -> 2379 -> 2642 kops/s.")
    return results, report


def run_fig10_prefetch_limit(limits_kb: Sequence[int] = (32, 128, 512,
                                                         2048, 8192),
                             nthreads: int = 8,
                             ops_per_thread: int = 600,
                             num_keys: int = DEFAULT_KEYS,
                             memory_bytes: int = DEFAULT_MEM
                             ) -> tuple[dict, str]:
    """Sweep the kernel prefetch-limit; CrossPrefetch ignores it."""
    approaches = ("APPonly", "OSonly", "CrossP[+predict+opt]")
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results = {}
    for limit_kb in limits_kb:
        blocks = max(1, limit_kb * KB // KernelConfig().page_size)
        machine = MachineConfig.local_ext4(Scale())
        machine.kernel_config = KernelConfig(
            ra_pages=blocks, ra_syscall_cap_blocks=blocks)
        results = run_approaches(
            machine, approaches,
            _dbbench_workload("multireadrandom", nthreads,
                              ops_per_thread, num_keys),
            memory_bytes=memory_bytes)
        all_results[f"{limit_kb}KB"] = results
        for approach, metrics in results.items():
            series[approach][f"{limit_kb}KB"] = metrics.kops
    report = format_matrix(
        "Fig. 10 — multireadrandom kops/s vs kernel prefetch limit",
        series, xlabel="limit ->", fmt="{:>10.1f}")
    return all_results, report
