"""Scale experiment: how the CrossPrefetch advantage moves in a fleet.

Not a figure from the paper — the paper stops at one machine.  This
sweep answers the ROADMAP's production question: when N hosts share
remote NVMe backends and load arrives open-loop, what happens to the
CrossPrefetch-vs-OSonly throughput gap and to p99 latency?

Each sweep point ``(n_hosts, n_tenants)`` runs one
:func:`repro.cluster.fleet.run_fleet` per approach: the hosts share
``n_backends`` NVMe-oF devices, every (host, tenant) pair gets its own
seeded open-loop arrival stream, and latency is measured arrival to
completion — so backend queueing shows up in the tail, which is where
shared-backend contention bites.  Points fan out over the
``run_parallel`` fork pool (every task carries its audit flag
explicitly, so ``--jobs N`` output is byte-identical to serial), and
the merged matrix can be persisted via :mod:`repro.harness.results`.

The report prints per-point throughput, p99, the Cross/OS gap, and the
gap's shift versus the 1-host baseline at the same tenant count — the
number that says whether CrossPrefetch's advantage survives contention.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.cluster.fleet import FleetConfig, run_fleet
from repro.cluster.traffic import RequestMix, TrafficSpec
from repro.harness.metrics import ApproachMetrics
from repro.harness.parallel import run_parallel
from repro.harness.report import format_matrix
from repro.harness.results import save_results
from repro.harness.runner import audit_enabled

__all__ = ["run_scale"]

MB = 1 << 20

OSONLY = "OSonly"
CROSS = "CrossP[+predict+opt]"


def _point_key(n_hosts: int, n_tenants: int, n_backends: int) -> str:
    return f"{n_hosts}h.{n_tenants}t.{n_backends}b"


def _scale_task(item: dict) -> tuple:
    """One fleet run, executable in a fork-pool worker.

    The item carries every knob explicitly (including ``audit``) so the
    task never reads harness module globals — fork and serial runs see
    identical inputs.
    """
    traffic = TrafficSpec(
        rate_per_s=item["rate_per_s"],
        horizon_us=item["horizon_us"],
        arrivals=item["arrivals"],
        diurnal=item["diurnal"],
        mix=RequestMix(*item["mix"]),
    )
    config = FleetConfig(
        n_hosts=item["n_hosts"],
        n_backends=item["n_backends"],
        n_tenants=item["n_tenants"],
        approach=item["approach"],
        memory_bytes=item["memory_bytes"],
        file_bytes=item["file_bytes"],
        seed=item["seed"],
        audit=item["audit"],
        traffic=traffic,
    )
    out = run_fleet(config)
    metrics: ApproachMetrics = out["metrics"]
    metrics.extra["fingerprint"] = out["fingerprint"]
    return item["key"], item["approach"], metrics


def run_scale(hosts: Sequence[int] = (1, 2, 4),
              tenant_counts: Sequence[int] = (1, 4),
              backends: int = 1,
              approaches: Sequence[str] = (OSONLY, CROSS),
              seed: int = 0,
              rate_per_s: float = 2_000.0,
              horizon_us: float = 400_000.0,
              file_mb: int = 8,
              memory_mb: Optional[int] = None,
              arrivals: str = "poisson",
              diurnal: Sequence[float] = (),
              mix: tuple = (0.35, 0.45, 0.2),
              audit: bool = False,
              jobs: int = 1,
              out: Optional[str] = None
              ) -> tuple[dict, str]:
    """Sweep host count × tenant count over shared backends.

    Returns ``(results, report)`` where ``results`` maps
    ``"{hosts}h.{tenants}t.{backends}b"`` to per-approach metrics.
    ``audit`` (or an ambient ``auditing()`` block, e.g. ``repro
    check``) attaches the fleet-wide invariant auditor to every run.
    With ``out`` set, the merged matrix is persisted via
    :func:`repro.harness.results.save_results`.
    """
    audit = bool(audit or audit_enabled())
    items = []
    for n_tenants in tenant_counts:
        for n_hosts in hosts:
            for approach in approaches:
                items.append({
                    "key": _point_key(n_hosts, n_tenants, backends),
                    "n_hosts": n_hosts,
                    "n_tenants": n_tenants,
                    "n_backends": backends,
                    "approach": approach,
                    "seed": seed,
                    "audit": audit,
                    "rate_per_s": rate_per_s,
                    "horizon_us": horizon_us,
                    "file_bytes": file_mb * MB,
                    "memory_bytes":
                        memory_mb * MB if memory_mb else None,
                    "arrivals": arrivals,
                    "diurnal": tuple(diurnal),
                    "mix": tuple(mix),
                })
    outcomes = run_parallel(_scale_task, items, jobs=jobs)

    results: dict[str, dict[str, ApproachMetrics]] = {}
    for key, approach, metrics in outcomes:
        results.setdefault(key, {})[approach] = metrics
    if out:
        save_results(results, out, experiment="scale")

    # -- report ------------------------------------------------------------
    tput: dict[str, dict[str, float]] = {}
    p50: dict[str, dict[str, float]] = {}
    p99: dict[str, dict[str, float]] = {}
    gaps: dict[str, dict[str, float]] = {}
    base_approach = approaches[0]
    for key, per in results.items():
        tput[key] = {a: per[a].throughput_mbps for a in approaches}
        p50[key] = {a: per[a].p50_us for a in approaches}
        p99[key] = {a: per[a].p99_us for a in approaches}
        base = per[base_approach].throughput_mbps
        row: dict[str, float] = {}
        for a in approaches[1:]:
            row[f"{a}/x"] = per[a].throughput_mbps / base if base else 0.0
        base_p99 = per[base_approach].p99_us
        for a in approaches[1:]:
            row[f"{a}/p99x"] = per[a].p99_us / base_p99 \
                if base_p99 else 0.0
        gaps[key] = row

    shift_lines = []
    for n_tenants in tenant_counts:
        ref_key = _point_key(min(hosts), n_tenants, backends)
        ref = gaps.get(ref_key, {})
        for n_hosts in hosts:
            if n_hosts == min(hosts):
                continue
            key = _point_key(n_hosts, n_tenants, backends)
            for a in approaches[1:]:
                for suffix, label in (("/x", "throughput"),
                                      ("/p99x", "p99")):
                    col = a + suffix
                    if col in ref and col in gaps.get(key, {}):
                        delta = gaps[key][col] - ref[col]
                        shift_lines.append(
                            f"  {key}: {a} {label} gap "
                            f"{gaps[key][col]:.2f}x "
                            f"({delta:+.2f} vs {ref_key}'s "
                            f"{ref[col]:.2f}x)")

    title = (f"hosts={tuple(hosts)}, tenants={tuple(tenant_counts)}, "
             f"backends={backends}, rate={rate_per_s:g}/s, "
             f"horizon={horizon_us / 1e3:g}ms, seed={seed}"
             + (", audited" if audit else ""))
    lines = [
        format_matrix(f"Scale — fleet throughput (MB/s) ({title})",
                      tput, xlabel="approach ->"),
        format_matrix(f"Scale — open-loop p50 latency (us, arrival to "
                      f"completion) ({title})", p50,
                      xlabel="approach ->", fmt="{:>12.0f}"),
        format_matrix(f"Scale — open-loop p99 latency (us, arrival to "
                      f"completion) ({title})", p99,
                      xlabel="approach ->", fmt="{:>12.0f}"),
        format_matrix(f"Scale — gap vs {base_approach} (throughput x, "
                      f"p99 x) ({title})", gaps,
                      xlabel="ratio ->", fmt="{:>12.2f}"),
    ]
    if shift_lines:
        lines.append(
            "contention shift of the CrossPrefetch gap vs the "
            f"{min(hosts)}-host baseline:\n" + "\n".join(shift_lines))
    return results, "\n\n".join(lines)
