"""Fig. 2 + Table 1: the RocksDB motivation analysis.

32 threads run a batched-but-random (multireadrandom) read workload
over a database that *fits in memory* (the 128 GB machine vs a 120 GB
DB).  Compared: APPonly, APPonly[fincore], OSonly, and full
CrossPrefetch.  Reported: throughput, lock-wait %, cache-miss %.
"""

from __future__ import annotations

from typing import Optional

from repro.harness.configs import MachineConfig, Scale
from repro.harness.metrics import ApproachMetrics
from repro.harness.report import format_table
from repro.harness.runner import run_approaches
from repro.workloads.dbbench import DbBenchConfig, run_dbbench
from repro.workloads.lsm import DbConfig

__all__ = ["run_fig2_motivation"]

GB = 1 << 30

APPROACHES = ("APPonly", "APPonly[fincore]", "OSonly",
              "CrossP[+predict+opt]")


def run_fig2_motivation(nthreads: int = 16,
                        ops_per_thread: int = 300,
                        num_keys: int = 250_000,
                        scale: Optional[Scale] = None
                        ) -> tuple[dict[str, ApproachMetrics], str]:
    machine = MachineConfig.motivation(scale or Scale())
    # DB sized below memory, like the paper's 120 GB on 128 GB.
    db = DbConfig(num_keys=num_keys)

    def workload(kernel, runtime):
        cfg = DbBenchConfig(pattern="multireadrandom",
                            nthreads=nthreads,
                            ops_per_thread=ops_per_thread,
                            db=db)
        return run_dbbench(kernel, runtime, cfg)

    results = run_approaches(machine, APPROACHES, workload)
    report = format_table(
        f"Fig. 2 + Table 1 — RocksDB motivation "
        f"(multireadrandom, {nthreads} threads, DB fits in memory, "
        f"scale {machine.scale})",
        results,
        columns=[
            ("kops/s", lambda m: f"{m.kops:10.1f}"),
            ("miss%", lambda m: f"{m.miss_pct:6.1f}"),
            ("lock%", lambda m: f"{m.lock_pct:6.1f}"),
            ("fincore", lambda m: f"{m.syscalls.get('fincore', 0):8.0f}"),
        ],
        note="Paper: CrossPrefetch highest kops; miss% "
             "CrossP < OSonly < fincore < APPonly; fincore lock% highest.")
    return results, report
