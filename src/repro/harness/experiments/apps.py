"""Application experiments: Fig. 8b (Filebench), 9a (YCSB), 9b (Snappy)."""

from __future__ import annotations

from typing import Sequence

from repro.harness.configs import MachineConfig, Scale
from repro.harness.report import format_matrix
from repro.harness.runner import make_kernel
from repro.runtimes.factory import build_runtime
from repro.workloads.filebench import (
    FilebenchConfig,
    PERSONALITIES,
    run_filebench,
)
from repro.workloads.snappy import SnappyConfig, run_snappy
from repro.workloads.ycsb import YcsbConfig, run_ycsb
from repro.workloads.lsm import DbConfig

__all__ = ["run_fig8b_filebench", "run_fig9a_ycsb", "run_fig9b_snappy"]

MB = 1 << 20

APPROACHES = ("APPonly", "OSonly", "CrossP[+predict]",
              "CrossP[+predict+opt]", "CrossP[+fetchall+opt]")


def run_fig8b_filebench(instances: int = 4,
                        threads_per_instance: int = 2,
                        bytes_per_instance: int = 48 * MB,
                        memory_bytes: int = 128 * MB,
                        personalities: Sequence[str] = PERSONALITIES,
                        approaches: Sequence[str] = APPROACHES
                        ) -> tuple[dict, str]:
    """Multi-instance Filebench; each instance gets its own runtime."""
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results = {}
    for personality in personalities:
        for approach in approaches:
            machine = MachineConfig.local_ext4(Scale())
            kernel = make_kernel(machine, approach,
                                 memory_bytes=memory_bytes)
            cfg = FilebenchConfig(
                personality=personality, instances=instances,
                threads_per_instance=threads_per_instance,
                bytes_per_instance=bytes_per_instance)
            metrics = run_filebench(
                kernel, lambda: build_runtime(approach, kernel), cfg)
            kernel.shutdown()
            metrics.approach = approach
            all_results.setdefault(personality, {})[approach] = metrics
            series[approach][personality] = metrics.throughput_mbps
    report = format_matrix(
        f"Fig. 8b — Filebench multi-instance throughput (MB/s, "
        f"{instances} instances)",
        series, xlabel="approach")
    return all_results, report


def run_fig9a_ycsb(workloads: Sequence[str] = ("A", "B", "C", "D",
                                               "E", "F"),
                   nthreads: int = 8,
                   ops_per_thread: int = 2500,
                   num_keys: int = 100_000,
                   memory_bytes: int = 256 * MB,
                   approaches: Sequence[str] = APPROACHES
                   ) -> tuple[dict, str]:
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results = {}
    for workload in workloads:
        for approach in approaches:
            machine = MachineConfig.local_ext4(Scale())
            kernel = make_kernel(machine, approach,
                                 memory_bytes=memory_bytes)
            runtime = build_runtime(approach, kernel)
            cfg = YcsbConfig(workload=workload, nthreads=nthreads,
                             ops_per_thread=ops_per_thread,
                             db=DbConfig(num_keys=num_keys))
            metrics = run_ycsb(kernel, runtime, cfg)
            runtime.teardown()
            kernel.shutdown()
            metrics.approach = approach
            all_results.setdefault(workload, {})[approach] = metrics
            series[approach][workload] = metrics.kops
    report = format_matrix(
        f"Fig. 9a — YCSB throughput (kops/s, {nthreads} threads, "
        "Zipfian)",
        series, xlabel="approach", fmt="{:>10.2f}")
    return all_results, report


def run_fig9b_snappy(ratios: Sequence[str] = ("1:6", "1:3", "1:2", "1:1"),
                     nthreads: int = 8,
                     total_bytes: int = 768 * MB,
                     approaches: Sequence[str] = APPROACHES
                     ) -> tuple[dict, str]:
    """Snappy compression vs memory:dataset ratio."""
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results = {}
    for ratio in ratios:
        num, den = (int(p) for p in ratio.split(":"))
        memory_bytes = max(32 * MB, total_bytes * num // den)
        for approach in approaches:
            machine = MachineConfig.local_ext4(Scale())
            kernel = make_kernel(machine, approach,
                                 memory_bytes=memory_bytes)
            runtime = build_runtime(approach, kernel)
            cfg = SnappyConfig(nthreads=nthreads,
                               total_bytes=total_bytes)
            metrics = run_snappy(kernel, runtime, cfg)
            runtime.teardown()
            kernel.shutdown()
            metrics.approach = approach
            all_results.setdefault(ratio, {})[approach] = metrics
            series[approach][ratio] = metrics.throughput_mbps
    report = format_matrix(
        "Fig. 9b — Snappy compression throughput (MB/s) vs "
        "memory:dataset ratio",
        series, xlabel="mem:data ->")
    return all_results, report
