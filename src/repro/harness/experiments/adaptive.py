"""Adaptive-policy experiment: learned prefetching vs static configs.

Not a figure from the paper — this is the evaluation for the
pattern-adaptive policy layer (:mod:`repro.crosslib.adaptive`,
``docs/prefetching.md``).  The paper's predictor is one static
configuration of CROSS-LIB; §4.6 leaves "richer pattern prediction" as
future work.  This experiment runs a *mixed* workload — three streams
with conflicting needs sharing one kernel and an oversubscribed page
cache — and shows that no single static readahead configuration wins
everywhere, while the adaptive policy does:

* ``scan``    — a pure sequential sweep over half the dataset.  Wants
  the biggest windows available, as early as possible.
* ``hot``     — zipf-style point reads over a small hot set (temporal
  reuse).  Wants its resident set protected, not prefetch.
* ``probe``   — random probes with occasional short ascending bursts —
  exactly the access shape that baits a counter-based predictor and
  the OS readahead ramp into issuing windows that will never be hit.

Rows sweep static CROSS-LIB configs (capped / default / aggressive)
against the same default config with ``Kernel(adaptive=)`` attached.
The win condition (asserted by ``tests/test_adaptive.py`` and printed
in the report) is that adaptive's *total* throughput strictly beats
every static row — with and without a fault storm — because it gives
each stream the policy the static rows can only pick globally.

The storm variant also quantifies the predictor-timing cost of faults:
retries delay completions, which perturbs the classifier/perceptron
observation stream, so the adaptive hit rate can shift; the report
prints the healthy-to-storm hit-rate delta.

Every row is deterministic per seed and runs green under the invariant
auditor (``repro check adaptive``).
"""

from __future__ import annotations

import random
from typing import Generator, Optional

from repro.crosslib.adaptive import AdaptiveSpec
from repro.crosslib.config import CrossLibConfig
from repro.harness.configs import MachineConfig, Scale
from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.harness.report import format_matrix
from repro.harness.runner import adapting, faulting, run_approaches
from repro.runtimes.base import HINT_NORMAL
from repro.sim.faults import make_preset

__all__ = ["run_adaptive"]

KB = 1 << 10
MB = 1 << 20

CROSS = "CrossP[+predict+opt]"

STREAMS = ("scan", "hot", "probe")

# The static sweep: each point is a plausible global tuning of the
# CROSS-LIB predictor.  "capped" keeps the kernel's 128 KB limit,
# "default" is the stock Table-2 configuration, "aggressive" is what a
# scan-only tuning would pick (bigger seed window, stronger relaxed
# scaling, a hair-trigger streak threshold).
STATIC_CONFIGS: dict[str, CrossLibConfig] = {
    "static-capped": CrossLibConfig(relax_limits=False, aggressive=False),
    "static-default": CrossLibConfig(),
    "static-aggressive": CrossLibConfig(base_prefetch_blocks=16,
                                        opt_window_scale=16,
                                        streak_threshold=8),
}
ADAPTIVE = "adaptive"


def run_adaptive(seed: int = 0,
                 memory_bytes: int = 48 * MB,
                 oversubscription: float = 2.0,
                 io_size: int = 16 * KB,
                 hot_ops: int = 300,
                 probe_ops: Optional[int] = None,
                 hot_set: int = 16,
                 hot_fraction: float = 0.85,
                 burst_fraction: float = 0.5,
                 preset: str = "storm",
                 intensity: float = 2.0,
                 include_storm: bool = True) -> tuple[dict, str]:
    """Static-config sweep vs the adaptive policy on a mixed workload.

    Returns ``(results, report)``; ``results["wins"]`` records, per
    variant, whether adaptive's total MB/s strictly beat every static
    row, and ``results["storm_hit_delta_pp"]`` the adaptive hit-rate
    percentage-point drop from healthy to storm.
    """
    total_bytes = int(memory_bytes * oversubscription)
    # The probe file matches the scan file so that opportunistically
    # bulk-loading it (what the static aggressive mode does for any
    # actively-read "random" file) costs real bandwidth and cache.
    scan_bytes = total_bytes * 3 // 8 // io_size * io_size
    hot_bytes = total_bytes // 4 // io_size * io_size
    probe_bytes = total_bytes * 3 // 8 // io_size * io_size
    machine = MachineConfig.local_ext4(Scale())
    block = 4 * KB

    def workload(kernel, runtime) -> ApproachMetrics:
        kernel.create_file("/adapt/scan", scan_bytes)
        kernel.create_file("/adapt/hot", hot_bytes)
        kernel.create_file("/adapt/probe", probe_bytes)
        per: dict[str, dict] = {}
        # The prober runs open-ended, as background interference, until
        # both foreground streams complete — so the mixed-workload
        # makespan is governed by the streams prefetch can actually
        # serve, not by how long the deliberately-starved probe takes.
        foreground = {"scan": False, "hot": False}

        def finish(name: str, t0: float, moved: int, hits: int,
                   misses: int) -> None:
            dt = kernel.now - t0
            per[name] = dict(
                bytes=moved, hits=hits, misses=misses, dt=dt,
                mbps=moved / MB / (dt / 1e6) if dt > 0 else 0.0,
                hit_rate=(100.0 * hits / (hits + misses)
                          if hits + misses else 0.0))

        def scanner() -> Generator:
            handle = yield from runtime.open("/adapt/scan", HINT_NORMAL)
            t0 = kernel.now
            moved = hits = misses = 0
            for off in range(0, scan_bytes, io_size):
                r = yield from runtime.pread(handle, off, io_size)
                moved += r.nbytes
                hits += r.hit_pages
                misses += r.miss_pages
            yield from runtime.close(handle)
            foreground["scan"] = True
            finish("scan", t0, moved, hits, misses)

        def hot_reader() -> Generator:
            rng = random.Random(seed * 1000 + 1)
            nblocks = hot_bytes // block
            span = io_size // block
            hot_offsets = [rng.randrange(nblocks - span) * block
                           for _ in range(hot_set)]
            handle = yield from runtime.open("/adapt/hot", HINT_NORMAL)
            t0 = kernel.now
            moved = hits = misses = 0
            for _ in range(hot_ops):
                if rng.random() < hot_fraction:
                    off = hot_offsets[rng.randrange(hot_set)]
                else:
                    off = rng.randrange(nblocks - span) * block
                r = yield from runtime.pread(handle, off, io_size)
                moved += r.nbytes
                hits += r.hit_pages
                misses += r.miss_pages
            yield from runtime.close(handle)
            foreground["hot"] = True
            finish("hot", t0, moved, hits, misses)

        def prober() -> Generator:
            rng = random.Random(seed * 1000 + 2)
            nblocks = probe_bytes // block
            stride = 8
            handle = yield from runtime.open("/adapt/probe", HINT_NORMAL)
            t0 = kernel.now
            moved = hits = misses = 0
            ops = 0
            while not (foreground["scan"] and foreground["hot"]) \
                    and (probe_ops is None or ops < probe_ops):
                start = rng.randrange(nblocks - 4 * stride)
                steps = 4 if rng.random() < burst_fraction else 1
                # The bait: a short *strided* ascending run.  A counter
                # predictor scores each step sequential-ish (stride <=
                # stride_blocks) and the OS readahead ramp fills the
                # gaps, so static configs fetch ~8 blocks per 1-block
                # read — and the run ends in another far jump, so the
                # window beyond it is wasted too.
                for i in range(steps):
                    r = yield from runtime.pread(
                        handle, (start + stride * i) * block, block)
                    moved += r.nbytes
                    hits += r.hit_pages
                    misses += r.miss_pages
                    ops += 1
                    if probe_ops is not None and ops >= probe_ops:
                        break
            yield from runtime.close(handle)
            finish("probe", t0, moved, hits, misses)

        kernel.sim.process(scanner(), name="adapt_scan")
        kernel.sim.process(hot_reader(), name="adapt_hot")
        kernel.sim.process(prober(), name="adapt_probe")
        kernel.run()

        duration = max(d["dt"] for d in per.values())
        metrics = collect_metrics(
            runtime.name, kernel,
            duration_us=duration,
            bytes_read=sum(d["bytes"] for d in per.values()),
            ops=sum(d["bytes"] // io_size for d in per.values()),
            hit_pages=sum(d["hits"] for d in per.values()),
            miss_pages=sum(d["misses"] for d in per.values()),
            nthreads=len(STREAMS),
        )
        metrics.extra["streams"] = per
        if kernel.adaptive is not None:
            metrics.extra["adaptive"] = kernel.adaptive.snapshot()
        return metrics

    def run_row(config: CrossLibConfig,
                spec: Optional[AdaptiveSpec],
                fault_spec) -> ApproachMetrics:
        with adapting(spec), faulting(fault_spec):
            results = run_approaches(machine, (CROSS,), workload,
                                     memory_bytes=memory_bytes,
                                     crosslib_config=config)
        return results[CROSS]

    variants: list[tuple[str, object]] = [("healthy", None)]
    if include_storm:
        variants.append(
            ("storm", make_preset(preset, seed=seed,
                                  intensity=intensity)))

    rows: dict[str, ApproachMetrics] = {}
    for variant, fault_spec in variants:
        for label, config in STATIC_CONFIGS.items():
            rows[f"{label} / {variant}"] = run_row(config, None,
                                                   fault_spec)
        rows[f"{ADAPTIVE} / {variant}"] = run_row(
            CrossLibConfig(), AdaptiveSpec(seed=seed), fault_spec)

    def stream_stat(row: str, stream: str, stat: str) -> float:
        return rows[row].extra["streams"][stream][stat]

    tput: dict[str, dict[str, float]] = {}
    hit: dict[str, dict[str, float]] = {}
    for label, metrics in rows.items():
        tput[label] = {s: stream_stat(label, s, "mbps")
                       for s in STREAMS}
        tput[label]["total"] = metrics.throughput_mbps
        hit[label] = {s: stream_stat(label, s, "hit_rate")
                      for s in STREAMS}
        hit[label]["total"] = (100.0 * metrics.hit_pages
                               / (metrics.hit_pages + metrics.miss_pages)
                               if metrics.hit_pages + metrics.miss_pages
                               else 0.0)

    title = (f"mixed scan+zipf+probe, {memory_bytes // MB} MB RAM x "
             f"{oversubscription:g} oversubscription, seed={seed}")
    lines = [
        format_matrix(f"Adaptive — per-stream throughput (MB/s) "
                      f"({title})", tput, xlabel="stream ->"),
        format_matrix(f"Adaptive — per-stream hit rate (%) ({title})",
                      hit, xlabel="stream ->", fmt="{:>9.1f}%"),
    ]

    wins: dict[str, bool] = {}
    for variant, _ in variants:
        adaptive_total = tput[f"{ADAPTIVE} / {variant}"]["total"]
        best_static, best_val = max(
            ((label, tput[f"{label} / {variant}"]["total"])
             for label in STATIC_CONFIGS), key=lambda kv: kv[1])
        wins[variant] = all(
            adaptive_total > tput[f"{label} / {variant}"]["total"]
            for label in STATIC_CONFIGS)
        gain = (100.0 * (adaptive_total - best_val) / best_val
                if best_val > 0 else 0.0)
        verdict = "beats" if wins[variant] else "DOES NOT beat"
        lines.append(
            f"{variant}: adaptive {adaptive_total:.1f} MB/s {verdict} "
            f"every static config (best static: {best_static} at "
            f"{best_val:.1f} MB/s, {gain:+.1f}%)")

    storm_delta = None
    if include_storm:
        healthy_hit = hit[f"{ADAPTIVE} / healthy"]["total"]
        storm_hit = hit[f"{ADAPTIVE} / storm"]["total"]
        storm_delta = storm_hit - healthy_hit
        lines.append(
            f"adaptive hit rate: healthy {healthy_hit:.1f}% -> storm "
            f"{storm_hit:.1f}% ({storm_delta:+.1f} pp): fault-induced "
            f"retries perturb classifier/perceptron timing "
            f"(see docs/prefetching.md)")

    results = {
        "rows": rows,
        "throughput": tput,
        "hit_rate": hit,
        "wins": wins,
        "storm_hit_delta_pp": storm_delta,
    }
    return results, "\n\n".join(lines)
