"""Recovery experiment: prefetch-primed vs cold crash recovery time.

Not a figure from the paper — the crash-consistency pillar.  A seeded
LSM write workload is crashed mid-run under the durable-damage fault
preset (torn writes + dropped writeback + crash-restart,
:mod:`repro.harness.crashfuzz`), then the *same* damage scenario is
recovered on a fresh kernel once per approach:

* ``APPonly``  — cold scan, application-level readahead only;
* ``OSonly``   — cold scan, stock kernel readahead;
* ``CrossP[+predict+opt]`` — the fsck-style pass primed by the
  CROSS-LIB queuing thread + concurrent I/O workers
  (:class:`repro.crosslib.repair.RepairPrefetcher`).

The claim under test: recovery is a cold-cache, known-plan scan — the
best case for cross-layered prefetching — so the primed pass must beat
stock readahead while holding the recovery invariants (recovered DB ≡
committed WAL prefix, no acknowledged-durable bytes lost) and staying
audit-green and bit-deterministic per seed.

Every approach recovers the *identical* snapshot (damage is computed
once per seed), so time differences are pure I/O-overlap wins.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.harness.crashfuzz import FuzzConfig, build_scenario, recover
from repro.harness.report import format_matrix
from repro.sim.audit import AuditError

__all__ = ["run_recovery"]

MB = 1 << 20
KB = 1 << 10

APPROACHES = ("APPonly", "OSonly", "CrossP[+predict+opt]")


def run_recovery(seed: int = 0,
                 nseeds: int = 2,
                 seeds: Optional[Sequence[int]] = None,
                 approaches: Sequence[str] = APPROACHES,
                 puts: int = 600,
                 num_keys: int = 24_576,
                 crash_frac: float = 0.75,
                 preset: str = "crash",
                 intensity: float = 1.0,
                 memory_mb: int = 96,
                 verify_cpu_us_per_block: float = 0.5
                 ) -> tuple[dict, str]:
    """Crash once per seed, recover per approach, compare wall time.

    Raises :class:`AuditError` if any recovery pass reports an
    invariant violation — ``repro check recovery`` treats that exactly
    like a conservation failure.
    """
    if seeds is None:
        seeds = tuple(seed * 1000 + 11 + 37 * i for i in range(nseeds))
    # 1 MB tables: many per-file readahead ramps for the cold scan to
    # pay and the primed scan to hide — the gap the experiment measures.
    cfg = FuzzConfig(puts=puts, num_keys=num_keys, value_size=1024,
                     sst_bytes=1 * MB, memtable_bytes=256 * KB,
                     l0_compaction_trigger=4, write_buffer_io=256 * KB,
                     wal_sync_ops=16, preset=preset,
                     intensity=intensity, memory_mb=memory_mb)

    time_ms: dict[str, dict[str, float]] = {a: {} for a in approaches}
    primed: dict[str, dict[str, float]] = {a: {} for a in approaches}
    speedup: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results: dict[str, dict[str, dict]] = {}

    for s in seeds:
        ordinal = max(1, int(puts * crash_frac))
        scenario = build_scenario(s, ordinal, cfg)
        key = f"seed={s}"
        all_results[key] = {"scenario": {
            "ordinal": scenario.ordinal,
            "crash_time_us": scenario.crash_time_us,
            "puts_completed": scenario.puts_completed,
            "files": len(scenario.snapshot.files),
            "lost_dirty_pages": scenario.snapshot.lost_dirty_pages,
            "resolution": dict(scenario.snapshot.resolution),
        }}
        for approach in approaches:
            report = recover(
                scenario, approach, memory_mb=memory_mb,
                verify_cpu_us_per_block=verify_cpu_us_per_block)
            if not report.ok:
                raise AuditError(
                    f"recovery invariants violated "
                    f"(seed={s}, {approach}):\n  "
                    + "\n  ".join(report.violations))
            time_ms[approach][key] = report.duration_us / 1e3
            primed[approach][key] = float(report.primed_blocks)
            all_results[key][approach] = {
                "duration_us": report.duration_us,
                "blocks_scanned": report.blocks_scanned,
                "damaged_blocks": report.damaged_blocks,
                "orphans_removed": report.orphans_removed,
                "replayed_records": report.replayed_records,
                "wal_committed_seq": report.wal_committed_seq,
                "rebuilt_keys": report.rebuilt_keys,
                "primed_blocks": report.primed_blocks,
            }
        base = time_ms.get("OSonly", {}).get(key)
        for approach in approaches:
            cur = time_ms[approach][key]
            speedup[approach][key] = (base / cur) if base and cur else 1.0

    title = f"preset={preset}, crash@{crash_frac:.0%} of {puts} puts"
    report_text = "\n\n".join([
        format_matrix(
            f"Recovery — time to repaired store (ms), cold vs primed "
            f"({title})",
            time_ms, xlabel="seed ->"),
        format_matrix(
            "Recovery — speedup vs OSonly cold scan",
            speedup, xlabel="seed ->", fmt="{:>10.2f}"),
        format_matrix(
            "Recovery — blocks primed by the repair queuing thread",
            primed, xlabel="seed ->", fmt="{:>10.0f}"),
    ])
    return all_results, report_text
