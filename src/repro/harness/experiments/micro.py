"""Fig. 5 + Table 3 (microbenchmark) and Fig. 6 (shared readers/writers)."""

from __future__ import annotations

from typing import Sequence

from repro.harness.configs import MachineConfig, Scale
from repro.harness.metrics import ApproachMetrics
from repro.harness.report import format_matrix
from repro.harness.runner import run_approaches
from repro.workloads.microbench import (
    MicrobenchConfig,
    SharedRwConfig,
    run_microbench,
    run_shared_rw,
)

__all__ = ["run_fig5_microbench", "run_fig6_shared_rw"]

MB = 1 << 20

APPROACHES = ("APPonly", "OSonly", "CrossP[+predict]",
              "CrossP[+predict+opt]", "CrossP[+fetchall+opt]")

WORKLOAD_CELLS = ("private-seq", "private-rand", "shared-seq",
                  "shared-rand")


def run_fig5_microbench(nthreads: int = 8,
                        memory_bytes: int = 192 * MB,
                        oversubscription: float = 2.15,
                        cells: Sequence[str] = WORKLOAD_CELLS,
                        approaches: Sequence[str] = APPROACHES
                        ) -> tuple[dict, str]:
    """The four Fig. 5 cells; dataset = oversubscription × memory."""
    total_bytes = int(memory_bytes * oversubscription)
    throughput: dict[str, dict[str, float]] = {a: {} for a in approaches}
    misses: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results: dict[str, dict[str, ApproachMetrics]] = {}

    for cell in cells:
        sharing, pattern = cell.split("-")
        machine = MachineConfig.local_ext4(Scale())

        def workload(kernel, runtime,
                     sharing=sharing, pattern=pattern):
            cfg = MicrobenchConfig(nthreads=nthreads,
                                   total_bytes=total_bytes,
                                   pattern=pattern, sharing=sharing)
            return run_microbench(kernel, runtime, cfg)

        results = run_approaches(machine, approaches, workload,
                                 memory_bytes=memory_bytes)
        all_results[cell] = results
        for approach, metrics in results.items():
            throughput[approach][cell] = metrics.throughput_mbps
            misses[approach][cell] = metrics.miss_pct

    report = "\n\n".join([
        format_matrix("Fig. 5 — Microbench throughput (MB/s)",
                      throughput, xlabel="approach"),
        format_matrix("Table 3 — Microbench avg cache misses (%)",
                      misses, xlabel="approach"),
    ])
    return all_results, report


def run_fig6_shared_rw(reader_counts: Sequence[int] = (2, 4, 8, 16),
                       nwriters: int = 4,
                       file_bytes: int = 256 * MB,
                       memory_bytes: int = 128 * MB,
                       ops_per_thread: int = 1024,
                       approaches: Sequence[str] = APPROACHES
                       ) -> tuple[dict, str]:
    """Aggregate write throughput vs concurrent reader count."""
    series: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results: dict[str, dict[str, ApproachMetrics]] = {}
    for nreaders in reader_counts:
        machine = MachineConfig.local_ext4(Scale())

        def workload(kernel, runtime, nreaders=nreaders):
            cfg = SharedRwConfig(nreaders=nreaders, nwriters=nwriters,
                                 file_bytes=file_bytes,
                                 ops_per_thread=ops_per_thread)
            return run_shared_rw(kernel, runtime, cfg)

        results = run_approaches(machine, approaches, workload,
                                 memory_bytes=memory_bytes)
        all_results[str(nreaders)] = results
        for approach, metrics in results.items():
            series[approach][str(nreaders)] = metrics.throughput_mbps

    report = format_matrix(
        f"Fig. 6 — Shared-file write throughput (MB/s), "
        f"{nwriters} writers, readers on x-axis",
        series, xlabel="readers ->")
    return all_results, report
