"""One experiment function per table/figure of the paper.

Every function returns ``(results, report)`` where ``results`` maps
approach (or sweep point) to metrics and ``report`` is the printable
paper-style table.  The pytest benches under ``benchmarks/`` are thin
wrappers that print the report and assert the shape invariants recorded
in ``EXPERIMENTS.md``.
"""

from repro.harness.experiments.motivation import run_fig2_motivation
from repro.harness.experiments.micro import (
    run_fig5_microbench,
    run_fig6_shared_rw,
)
from repro.harness.experiments.mmap import run_tab4_mmap
from repro.harness.experiments.rocksdb import (
    run_fig7a_threads,
    run_fig7b_patterns,
    run_fig7c_memory,
    run_fig7d_f2fs,
    run_fig8a_remote,
    run_fig10_prefetch_limit,
    run_tab5_breakdown,
)
from repro.harness.experiments.apps import (
    run_fig8b_filebench,
    run_fig9a_ycsb,
    run_fig9b_snappy,
)
from repro.harness.experiments.adaptive import run_adaptive
from repro.harness.experiments.resilience import run_resilience
from repro.harness.experiments.fairness import run_fairness
from repro.harness.experiments.recovery import run_recovery
from repro.harness.experiments.scale import run_scale

__all__ = [
    "run_adaptive",
    "run_fairness",
    "run_fig10_prefetch_limit",
    "run_fig2_motivation",
    "run_fig5_microbench",
    "run_fig6_shared_rw",
    "run_fig7a_threads",
    "run_fig7b_patterns",
    "run_fig7c_memory",
    "run_fig7d_f2fs",
    "run_fig8a_remote",
    "run_fig8b_filebench",
    "run_fig9a_ycsb",
    "run_fig9b_snappy",
    "run_recovery",
    "run_resilience",
    "run_scale",
    "run_tab4_mmap",
    "run_tab5_breakdown",
]
