"""Fairness experiment: multi-tenant QoS under a single-region fault.

Not a figure from the paper — this is the multi-tenant pillar: two
tenants stream their own files, placed in different device regions, and
a fault preset is scoped to tenant A's region only
(``FaultSpec.region``).  The claim under test is *fault isolation*:

* with the per-tenant QoS manager attached (``--tenants``), only tenant
  A's prefetch is throttled/paused; tenant B must keep ≥90% of its
  fault-free throughput, because A's freed prefetch slots and bucket
  rate are re-leased to B and none of B's submissions are clamped;
* with the PR-4 *global* degrade clamp (same kernel, no QoS manager),
  A's fault pressure throttles B's prefetch too — B's retention
  visibly regresses even though B's region is perfectly healthy;
* OS-only readahead is the control: no clamp at all, but also no
  large-window prefetch to protect.

Every row is deterministic per seed and runs green under the invariant
auditor (``repro check fairness``).  See ``docs/qos.md``.
"""

from __future__ import annotations

import random
from typing import Generator, Optional, Sequence

from repro.harness.configs import MachineConfig, Scale
from repro.harness.metrics import ApproachMetrics, collect_metrics
from repro.harness.report import format_matrix
from repro.harness.runner import faulting, run_approaches, tenancy
from repro.runtimes.base import HINT_RANDOM
from repro.sim.faults import make_preset
from repro.sim.qos import QosSpec, TenantSpec

__all__ = ["run_fairness"]

KB = 1 << 10
MB = 1 << 20

CROSS = "CrossP[+predict+opt]"
OSONLY = "OSonly"


def _percentile(samples: list, pct: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100 * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def run_fairness(seed: int = 0,
                 preset: str = "flaky",
                 intensity: float = 6.0,
                 memory_bytes: int = 64 * MB,
                 oversubscription: float = 2.0,
                 io_size: int = 16 * KB,
                 segment_bytes: int = 1 * MB,
                 backward_fraction: float = 0.4,
                 tenants: Sequence[str] = ("A", "B"),
                 faulted_region: int = 0) -> tuple[dict, str]:
    """Per-tenant throughput with one tenant's region faulted.

    Each tenant owns one file pinned to its own device region; tenant
    ``tenants[faulted_region]``'s region takes the ``preset`` fault
    scenario while the co-tenants' regions stay healthy.  Rows compare
    per-tenant QoS, the global degrade clamp, and OS-only readahead,
    each against its own fault-free baseline.
    """
    total_bytes = int(memory_bytes * oversubscription)
    per_tenant = total_bytes // len(tenants) // io_size * io_size
    machine = MachineConfig.local_ext4(Scale())
    qos = QosSpec(tenants=tuple(TenantSpec(name) for name in tenants))

    def workload(kernel, runtime) -> ApproachMetrics:
        for idx, name in enumerate(tenants):
            kernel.create_file(f"/fair/{name}", per_tenant,
                               tenant=name, region=idx)
        per: dict[str, dict] = {}

        def reader(idx: int, name: str) -> Generator:
            rng = random.Random(seed * 1000 + idx)
            handle = yield from runtime.open(f"/fair/{name}",
                                             HINT_RANDOM)
            t0 = kernel.now
            moved = hits = misses = 0
            lats: list[float] = []
            seg = segment_bytes
            order = list(range(per_tenant // seg))
            rng.shuffle(order)
            for s in order:
                seg_base = s * seg
                offsets = list(range(0, seg, io_size))
                if rng.random() < backward_fraction:
                    offsets.reverse()
                for off in offsets:
                    op_t0 = kernel.now
                    r = yield from runtime.pread(
                        handle, seg_base + off, io_size)
                    lats.append(kernel.now - op_t0)
                    moved += r.nbytes
                    hits += r.hit_pages
                    misses += r.miss_pages
            yield from runtime.close(handle)
            dt = kernel.now - t0
            per[name] = dict(
                bytes=moved, hits=hits, misses=misses, dt=dt,
                mbps=moved / MB / (dt / 1e6) if dt > 0 else 0.0,
                p99_us=_percentile(lats, 99),
                latencies=lats)

        for idx, name in enumerate(tenants):
            kernel.sim.process(reader(idx, name),
                               name=f"fair_reader[{name}]")
        kernel.run()

        duration = max(d["dt"] for d in per.values())
        all_lats: list[float] = []
        for d in per.values():
            all_lats.extend(d.pop("latencies"))
        metrics = collect_metrics(
            runtime.name, kernel,
            duration_us=duration,
            bytes_read=sum(d["bytes"] for d in per.values()),
            ops=sum(d["bytes"] // io_size for d in per.values()),
            hit_pages=sum(d["hits"] for d in per.values()),
            miss_pages=sum(d["misses"] for d in per.values()),
            nthreads=len(tenants),
            latencies_us=all_lats,
        )
        metrics.extra["tenants"] = per
        return metrics

    fault = make_preset(preset, seed=seed, intensity=intensity,
                        region=faulted_region)

    def run_row(approach: str, qos_spec: Optional[QosSpec],
                fault_spec) -> ApproachMetrics:
        with tenancy(qos_spec), faulting(fault_spec):
            results = run_approaches(machine, (approach,), workload,
                                     memory_bytes=memory_bytes)
        return results[approach]

    rows: dict[str, ApproachMetrics] = {
        "CrossP+QoS / healthy": run_row(CROSS, qos, None),
        "CrossP+QoS / faulted": run_row(CROSS, qos, fault),
        "CrossP global / healthy": run_row(CROSS, None, None),
        "CrossP global / faulted": run_row(CROSS, None, fault),
        "OSonly / healthy": run_row(OSONLY, None, None),
        "OSonly / faulted": run_row(OSONLY, None, fault),
    }

    faulted_tenant = tenants[faulted_region]
    co_tenants = [t for t in tenants if t != faulted_tenant]

    def tenant_mbps(row: str, tenant: str) -> float:
        return rows[row].extra["tenants"][tenant]["mbps"]

    def retention(mode: str, tenant: str) -> float:
        healthy = tenant_mbps(f"{mode} / healthy", tenant)
        if healthy <= 0:
            return 0.0
        return 100.0 * tenant_mbps(f"{mode} / faulted", tenant) / healthy

    tput: dict[str, dict[str, float]] = {}
    p99: dict[str, dict[str, float]] = {}
    for label, metrics in rows.items():
        tput[label] = {t: tenant_mbps(label, t) for t in tenants}
        tput[label]["total"] = metrics.throughput_mbps
        p99[label] = {t: metrics.extra["tenants"][t]["p99_us"]
                      for t in tenants}

    ret: dict[str, dict[str, float]] = {
        mode: {t: retention(mode, t) for t in tenants}
        for mode in ("CrossP+QoS", "CrossP global", "OSonly")
    }

    title = (f"preset={preset}, intensity={intensity:g}, "
             f"region {faulted_region} (tenant {faulted_tenant}) "
             f"faulted, seed={seed}")
    lines = [
        format_matrix(f"Fairness — per-tenant throughput (MB/s) "
                      f"({title})", tput, xlabel="tenant ->"),
        format_matrix(f"Fairness — per-tenant p99 read latency (us) "
                      f"({title})", p99, xlabel="tenant ->",
                      fmt="{:>10.0f}"),
        format_matrix(f"Fairness — faulted-run throughput retention "
                      f"(% of own fault-free baseline) ({title})",
                      ret, xlabel="tenant ->", fmt="{:>9.1f}%"),
    ]
    co = co_tenants[0]
    lines.append(
        f"co-tenant {co} retention: "
        f"QoS {ret['CrossP+QoS'][co]:.1f}% vs "
        f"global clamp {ret['CrossP global'][co]:.1f}% vs "
        f"OS-only {ret['OSonly'][co]:.1f}%")

    results = {
        "rows": rows,
        "retention": ret,
        "faulted_tenant": faulted_tenant,
        "co_tenants": co_tenants,
    }
    return results, "\n\n".join(lines)
