"""Resilience experiment: throughput + p99 latency across fault intensities.

Not a figure from the paper — this is the robustness pillar: the same
§5.2 microbenchmark mix is swept across increasing fault intensity for a
named fault preset (``repro.sim.faults``), comparing vanilla-OS
readahead against CrossPrefetch.  The claim under test is *graceful
degradation*: CrossPrefetch must keep its advantage while its prefetch
machinery absorbs injected failures, retries, deadline aborts, and the
degradation controller's throttling — and every run must stay
deterministic per seed and clean under the invariant auditor.

Intensity 0.0 is the healthy control: it attaches no fault engine at
all, so its numbers are byte-identical to the plain microbenchmark.
"""

from __future__ import annotations

from typing import Sequence

from repro.harness.configs import MachineConfig, Scale
from repro.harness.metrics import ApproachMetrics
from repro.harness.report import format_matrix
from repro.harness.runner import faulting, run_approaches
from repro.sim.faults import make_preset
from repro.workloads.microbench import MicrobenchConfig, run_microbench

__all__ = ["run_resilience"]

MB = 1 << 20

APPROACHES = ("OSonly", "CrossP[+predict+opt]")


def run_resilience(intensities: Sequence[float] = (0.0, 0.5, 1.0, 2.0),
                   preset: str = "storm",
                   seed: int = 0,
                   nthreads: int = 4,
                   memory_bytes: int = 64 * MB,
                   oversubscription: float = 2.0,
                   pattern: str = "rand",
                   remote: bool = False,
                   approaches: Sequence[str] = APPROACHES
                   ) -> tuple[dict, str]:
    """Sweep ``preset`` fault intensity; report throughput, p99, faults.

    ``remote`` runs against the NVMe-oF machine (where the ``fabric``
    preset's drops and partitions bite hardest).
    """
    total_bytes = int(memory_bytes * oversubscription)
    throughput: dict[str, dict[str, float]] = {a: {} for a in approaches}
    p99: dict[str, dict[str, float]] = {a: {} for a in approaches}
    injected: dict[str, dict[str, float]] = {a: {} for a in approaches}
    all_results: dict[str, dict[str, ApproachMetrics]] = {}

    for intensity in intensities:
        machine = (MachineConfig.remote_nvmeof(Scale()) if remote
                   else MachineConfig.local_ext4(Scale()))
        spec = make_preset(preset, seed=seed, intensity=intensity)

        def workload(kernel, runtime):
            cfg = MicrobenchConfig(nthreads=nthreads,
                                   total_bytes=total_bytes,
                                   pattern=pattern, sharing="shared",
                                   sample_latencies=True)
            return run_microbench(kernel, runtime, cfg)

        with faulting(spec):
            results = run_approaches(machine, approaches, workload,
                                     memory_bytes=memory_bytes)
        key = f"{intensity:g}"
        all_results[key] = results
        for approach, metrics in results.items():
            throughput[approach][key] = metrics.throughput_mbps
            p99[approach][key] = metrics.p99_us
            faults = metrics.extra.get("faults", {})
            injected[approach][key] = float(
                faults.get("faults_injected", 0)
                + faults.get("timeouts", 0))

    title = f"preset={preset}, seed={seed}" + (", remote" if remote else "")
    report = "\n\n".join([
        format_matrix(
            f"Resilience — throughput (MB/s) vs fault intensity "
            f"({title})",
            throughput, xlabel="intensity ->"),
        format_matrix(
            f"Resilience — p99 read latency (us) vs fault intensity "
            f"({title})",
            p99, xlabel="intensity ->"),
        format_matrix(
            f"Resilience — faults injected + prefetch deadline aborts "
            f"({title})",
            injected, xlabel="intensity ->", fmt="{:>10.0f}"),
    ])
    return all_results, report
