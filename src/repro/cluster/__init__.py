"""Cluster-scale serving simulation: a fleet of hosts in one engine.

The paper evaluates CrossPrefetch on one machine; this package grows
the reproduction toward the ROADMAP's production-scale story.  It
models **N hosts** — each a full page-cache + CROSS-OS + CROSS-LIB
stack (:mod:`repro.cluster.host`) — inside **one** deterministic
discrete-event engine, sharing :class:`~repro.storage.remote.RemoteNVMeDevice`
backends so hosts genuinely contend for backend queue depth and fabric
bandwidth (:mod:`repro.cluster.fleet`).  Load is **open-loop**: an
arrival-process traffic generator (:mod:`repro.cluster.traffic`) issues
requests at times drawn from a seeded arrival stream whether or not
earlier requests have completed — the regime where queueing delay and
tail latency actually show up, unlike the closed-loop benchmark threads
the paper experiments use.

See ``docs/cluster.md`` for the model and the ``scale`` experiment.
"""

from repro.cluster.host import Host, HostSpec, ID_NAMESPACE
from repro.cluster.traffic import (
    BurstArrivals,
    DiurnalSchedule,
    PoissonArrivals,
    RequestMix,
    TrafficSpec,
    arrival_stream,
    traffic_seed,
)
from repro.cluster.fleet import FleetConfig, run_fleet

__all__ = [
    "BurstArrivals",
    "DiurnalSchedule",
    "FleetConfig",
    "Host",
    "HostSpec",
    "ID_NAMESPACE",
    "PoissonArrivals",
    "RequestMix",
    "TrafficSpec",
    "arrival_stream",
    "run_fleet",
    "traffic_seed",
]
