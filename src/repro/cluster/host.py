"""One simulated serving host: kernel + runtime + request accounting.

This is the reusable wiring that used to live inline in
``repro.harness.runner``: build a kernel for a machine preset, build
the Table-2 runtime for an approach on it, tear both down in order.
:meth:`Host.single` is the standalone case every paper experiment runs
(own simulator, own device) — ``repro.harness.runner.make_kernel`` and
``run_one`` route through :func:`build_host_kernel` so the single-host
event sequence stays byte-identical.  :meth:`Host.in_fleet` is the
cluster case: the host joins a *shared* simulator and a *shared*
backend device, with its own registry and a disjoint inode-id
namespace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.crosslib.config import CrossLibConfig
from repro.os.inode import Inode
from repro.os.kernel import Kernel
from repro.runtimes.base import IORuntime
from repro.runtimes.factory import build_runtime, needs_cross
from repro.sim.engine import Simulator
from repro.sim.stats import StatsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard: the
    # harness package imports this module (runner routes through
    # build_host_kernel), so the reverse import stays type-only.
    from repro.harness.configs import MachineConfig

__all__ = ["Host", "HostSpec", "ID_NAMESPACE", "build_host_kernel"]

# Each host allocates inode ids (= device stream ids) from a disjoint
# namespace so two hosts' files never alias on a shared backend: the
# scheduler's sequential-stream detector, the region map, the QoS
# stream→tenant table, and the durable ledger are all keyed by stream
# id.  2^20 streams per host is far beyond any experiment.
ID_NAMESPACE = 1 << 20


@dataclass(frozen=True)
class HostSpec:
    """Static description of one fleet host."""

    host_id: int = 0
    approach: str = "OSonly"
    memory_bytes: Optional[int] = None
    crosslib_config: Optional[CrossLibConfig] = None

    @property
    def name(self) -> str:
        return f"host{self.host_id}"


def build_host_kernel(machine: MachineConfig, approach: str,
                      memory_bytes: Optional[int] = None, *,
                      tracer=None,
                      emit_lock_holds: bool = False,
                      audit: bool = False,
                      faults=None,
                      qos=None,
                      adaptive=None,
                      sim: Optional[Simulator] = None,
                      registry: Optional[StatsRegistry] = None,
                      device_factory=None,
                      inode_id_start: int = 1) -> Kernel:
    """The kernel/device wiring shared by the single-host harness and
    the fleet.

    With the last four arguments at their defaults this constructs
    exactly what ``repro.harness.runner.make_kernel`` always built —
    same arguments, same order — so existing runs are byte-identical.
    """
    return Kernel(
        memory_bytes=memory_bytes or machine.scaled_memory_bytes,
        config=machine.kernel_config,
        device_factory=device_factory or machine.device_factory(),
        cross_enabled=needs_cross(approach),
        tracer=tracer,
        emit_lock_holds=emit_lock_holds,
        audit=audit,
        faults=faults,
        qos=qos,
        adaptive=adaptive,
        sim=sim,
        registry=registry,
        inode_id_start=inode_id_start,
    )


class Host:
    """One serving host: a kernel, its runtime, and request counters.

    The open-loop traffic driver (:mod:`repro.cluster.fleet`) feeds
    :meth:`note_request` with one sample per completed request;
    arrival-to-completion latency is the open-loop number that captures
    queueing delay, which closed-loop benchmark threads structurally
    cannot observe.
    """

    def __init__(self, spec: HostSpec, kernel: Kernel,
                 runtime: IORuntime):
        self.spec = spec
        self.kernel = kernel
        self.runtime = runtime
        # Open-loop request accounting, filled by the traffic driver.
        self.requests = 0
        self.request_bytes = 0
        self.hit_pages = 0
        self.miss_pages = 0
        self.latencies_us: list = []
        self._torn_down = False

    # -- construction ------------------------------------------------------

    @classmethod
    def single(cls, machine: MachineConfig, approach: str,
               memory_bytes: Optional[int] = None, *,
               tracer=None, emit_lock_holds: bool = False,
               audit: bool = False, faults=None, qos=None,
               adaptive=None,
               crosslib_config: Optional[CrossLibConfig] = None
               ) -> "Host":
        """The standalone machine every paper experiment runs."""
        spec = HostSpec(0, approach, memory_bytes, crosslib_config)
        kernel = build_host_kernel(
            machine, approach, memory_bytes, tracer=tracer,
            emit_lock_holds=emit_lock_holds, audit=audit,
            faults=faults, qos=qos, adaptive=adaptive)
        runtime = build_runtime(approach, kernel, crosslib_config)
        return cls(spec, kernel, runtime)

    @classmethod
    def in_fleet(cls, spec: HostSpec, machine: MachineConfig, *,
                 sim: Simulator, backend) -> "Host":
        """Join a shared engine and a shared backend device.

        The host gets its own :class:`StatsRegistry` (per-host syscall
        and Cross-OS counters) and a disjoint inode-id namespace.  Any
        QoS manager or fault engine must already be attached to
        ``backend`` — CROSS-LIB snapshots ``device.qos`` when the
        runtime is built.  The fleet owns the shared auditor
        (``sim.auditor``), so ``kernel.auditor`` stays None and
        :meth:`teardown` never drains or finalizes the shared engine.
        """
        kernel = build_host_kernel(
            machine, spec.approach, spec.memory_bytes,
            sim=sim, registry=StatsRegistry(),
            device_factory=lambda _sim, _registry: backend,
            inode_id_start=1 + spec.host_id * ID_NAMESPACE)
        runtime = build_runtime(spec.approach, kernel,
                                spec.crosslib_config)
        return cls(spec, kernel, runtime)

    # -- conveniences ------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def sim(self) -> Simulator:
        return self.kernel.sim

    def create_file(self, path: str, size: int, *,
                    tenant: Optional[str] = None) -> Inode:
        """Create a file, tagging its stream with ``tenant`` on
        whichever QoS manager applies (the kernel's own in the single
        case, the shared backend's in a fleet)."""
        inode = self.kernel.create_file(path, size, tenant=tenant)
        if self.kernel.qos is None:
            qos = self.kernel.device.qos
            if qos is not None:
                qos.register_stream(inode.id, tenant)
        return inode

    def note_request(self, nbytes: int, latency_us: float, *,
                     hit_pages: int = 0, miss_pages: int = 0) -> None:
        """Record one completed open-loop request."""
        self.requests += 1
        self.request_bytes += nbytes
        self.hit_pages += hit_pages
        self.miss_pages += miss_pages
        self.latencies_us.append(latency_us)

    # -- lifecycle ---------------------------------------------------------

    def teardown(self) -> None:
        """Stop runtime threads, then shut the kernel down (idempotent).

        In a fleet the shutdown only *enqueues* flusher/worker
        interrupts on the shared engine; the fleet drains them with one
        final ``sim.run()`` after every host is torn down.
        """
        if self._torn_down:
            return
        self._torn_down = True
        self.runtime.teardown()
        self.kernel.shutdown()

    def summary(self) -> dict:
        """Per-host counters for reports and determinism fingerprints."""
        registry = self.kernel.registry
        return {
            "host": self.name,
            "approach": self.spec.approach,
            "requests": self.requests,
            "request_bytes": self.request_bytes,
            "hit_pages": self.hit_pages,
            "miss_pages": self.miss_pages,
            "latency_sum_us": round(sum(self.latencies_us), 3),
            "prefetch_blocks": registry.get("cross.prefetch_blocks"),
            "syscalls": registry.get("syscalls.read"),
        }
