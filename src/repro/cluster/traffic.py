"""Open-loop traffic generation: seeded arrival processes + request mixes.

The paper's experiments (and every harness workload before this module)
are *closed-loop*: a fixed number of benchmark threads issue the next
request only after the previous one completes, so offered load
self-throttles exactly when the system slows down — the regime where
trace-replay studies show benchmarks mislead about tails.  This module
is the *open-loop* counterpart: arrival instants are drawn up front
from a seeded process, requests are issued at those instants whether or
not earlier ones have finished, and latency measured from arrival to
completion includes queueing delay.

Everything is a pure function of ``(spec, seed)``:

* :class:`PoissonArrivals` — exponential gaps at ``rate_per_s``,
  optionally modulated by a :class:`DiurnalSchedule` ramp;
* :class:`BurstArrivals` — deterministic bursts of ``burst``
  same-instant arrivals every ``period_us`` (the calendar queue
  dispatches a burst as one batched instant);
* :class:`RequestMix` — weighted draw over the three request shapes the
  existing workloads exercise: ``point`` (one random-offset read, the
  RocksDB-style shape), ``scan`` (a sequential run, the utility /
  fig5-seq shape), ``hot`` (a read inside a small hot set, the Zipf-ish
  shape);
* :func:`traffic_seed` — stable per-(host, tenant) sub-seed derivation
  so fleet layout changes never reshuffle another stream's draws.

Draw request parameters *in the arrival generator* (deterministic
order), never inside request processes (completion order would leak
into the RNG stream) — the rule the determinism tests pin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["BurstArrivals", "DiurnalSchedule", "PoissonArrivals",
           "RequestMix", "TrafficSpec", "arrival_stream", "traffic_seed"]

KB = 1 << 10


def traffic_seed(seed: int, host_id: int, tenant_idx: int) -> int:
    """A stable sub-seed for one (host, tenant) traffic stream.

    Plain prime-weighted arithmetic — not ``hash()``, which is
    salt-randomized across interpreter runs.
    """
    return (seed * 1_000_003 + host_id * 7_919
            + tenant_idx * 104_729) & 0x7FFF_FFFF


@dataclass(frozen=True)
class DiurnalSchedule:
    """Piecewise-constant rate multipliers cycling over ``period_us``.

    ``multipliers=(0.5, 2.0)`` with a 1 s period models a load ramp:
    half rate for the first 500 ms of every cycle, double for the
    second.  Applied multiplicatively to the arrival rate at each draw.
    """

    multipliers: Tuple[float, ...] = (1.0,)
    period_us: float = 1_000_000.0

    def __post_init__(self):
        if not self.multipliers:
            raise ValueError("need at least one multiplier")
        if any(m <= 0 for m in self.multipliers):
            raise ValueError(f"multipliers must be positive: "
                             f"{self.multipliers}")
        if self.period_us <= 0:
            raise ValueError(f"period_us must be positive: "
                             f"{self.period_us}")

    def multiplier(self, t_us: float) -> float:
        phase = (t_us % self.period_us) / self.period_us
        idx = min(int(phase * len(self.multipliers)),
                  len(self.multipliers) - 1)
        return self.multipliers[idx]


@dataclass(frozen=True)
class PoissonArrivals:
    """Exponential inter-arrival gaps at ``rate_per_s`` requests/s."""

    rate_per_s: float
    schedule: Optional[DiurnalSchedule] = None

    def stream(self, rng: random.Random,
               horizon_us: float) -> List[float]:
        if self.rate_per_s <= 0:
            return []
        out: List[float] = []
        t = 0.0
        base_gap = 1e6 / self.rate_per_s
        while True:
            mult = self.schedule.multiplier(t) \
                if self.schedule is not None else 1.0
            t += rng.expovariate(1.0) * base_gap / mult
            if t >= horizon_us:
                return out
            out.append(t)


@dataclass(frozen=True)
class BurstArrivals:
    """``burst`` same-instant arrivals every ``period_us`` — the
    deterministic worst case for queueing (no randomness at all)."""

    period_us: float
    burst: int = 1

    def stream(self, rng: random.Random,
               horizon_us: float) -> List[float]:
        if self.period_us <= 0 or self.burst <= 0:
            return []
        out: List[float] = []
        t = self.period_us
        while t < horizon_us:
            out.extend([t] * self.burst)
            t += self.period_us
        return out


@dataclass(frozen=True)
class RequestMix:
    """Weighted draw over the three request shapes."""

    point: float = 0.6
    scan: float = 0.2
    hot: float = 0.2

    def __post_init__(self):
        if min(self.point, self.scan, self.hot) < 0 or \
                self.point + self.scan + self.hot <= 0:
            raise ValueError(f"bad mix: point={self.point}, "
                             f"scan={self.scan}, hot={self.hot}")

    def draw(self, rng: random.Random) -> str:
        r = rng.random() * (self.point + self.scan + self.hot)
        if r < self.point:
            return "point"
        if r < self.point + self.scan:
            return "scan"
        return "hot"


@dataclass(frozen=True)
class TrafficSpec:
    """One tenant-stream's open-loop load, fully seed-deterministic.

    ``rate_per_s`` is the offered request rate over ``horizon_us`` of
    simulated time; each request reads ``io_bytes`` (a ``scan`` issues
    ``scan_ios`` of them back to back; a ``hot`` request lands in the
    first ``hot_frac`` of the file).
    """

    rate_per_s: float = 2_000.0
    horizon_us: float = 400_000.0
    io_bytes: int = 16 * KB
    scan_ios: int = 8
    hot_frac: float = 0.125
    arrivals: str = "poisson"          # "poisson" | "burst"
    burst: int = 16
    burst_period_us: float = 10_000.0
    diurnal: Tuple[float, ...] = ()    # () = flat rate
    diurnal_period_us: float = 100_000.0
    mix: RequestMix = field(default_factory=RequestMix)

    def arrival_process(self):
        if self.arrivals == "poisson":
            schedule = DiurnalSchedule(self.diurnal,
                                       self.diurnal_period_us) \
                if self.diurnal else None
            return PoissonArrivals(self.rate_per_s, schedule)
        if self.arrivals == "burst":
            return BurstArrivals(self.burst_period_us, self.burst)
        raise ValueError(f"unknown arrival process {self.arrivals!r}; "
                         f"choose poisson or burst")


def arrival_stream(spec: TrafficSpec,
                   rng: random.Random) -> List[float]:
    """The arrival instants (µs, ascending) for one tenant stream."""
    return spec.arrival_process().stream(rng, spec.horizon_us)
