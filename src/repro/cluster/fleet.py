"""A fleet of hosts on one engine, contending for shared backends.

:func:`run_fleet` builds ``n_hosts`` :class:`~repro.cluster.host.Host`
machines inside **one** :class:`~repro.sim.engine.Simulator`, round-robins
them onto ``n_backends`` shared storage devices (remote NVMe-oF by
default, so fabric RTT and bandwidth are part of the contention), drives
every (host, tenant) pair with an open-loop
:class:`~repro.cluster.traffic.TrafficSpec` stream, and returns
fleet-level :class:`~repro.harness.metrics.ApproachMetrics` plus
per-host summaries and a determinism fingerprint.

Construction order matters and is pinned here:

1. the shared :class:`~repro.sim.audit.Auditor` (when auditing) —
   before any lock exists, so every primitive registers;
2. backend devices, each with its own registry;
3. fault engines and multi-tenant QoS managers, attached to the
   backends — *before* any host, because CROSS-LIB snapshots
   ``device.qos`` when the runtime is built;
4. hosts (shared sim, per-host registry, disjoint inode namespaces),
   then their files and tenant-stream registrations.

The end-of-run audit is fleet-aware: the per-kernel equality check in
``Auditor.final_check`` assumes one device per auditor, so the fleet
instead runs ``check_now`` per host, leak checks per host, one *global*
byte-conservation equality across all backends, one global QoS
admission equality across all managers, and finally
``final_check(None)`` for the lock/process leak checks.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.host import Host, HostSpec
from repro.cluster.traffic import TrafficSpec, arrival_stream, \
    traffic_seed
from repro.harness.configs import MachineConfig
from repro.harness.metrics import ApproachMetrics
from repro.runtimes.base import HINT_NORMAL
from repro.sim.audit import Auditor
from repro.sim.engine import Simulator
from repro.sim.qos import QosManager, QosSpec, TenantSpec

__all__ = ["FleetConfig", "run_fleet"]

MB = 1 << 20


def _default_machine() -> MachineConfig:
    return MachineConfig.remote_nvmeof()


@dataclass
class FleetConfig:
    """One fleet run: topology × approach × traffic."""

    n_hosts: int = 2
    n_backends: int = 1
    n_tenants: int = 1
    approach: str = "OSonly"
    machine: MachineConfig = field(default_factory=_default_machine)
    memory_bytes: Optional[int] = None     # per host; None = machine's
    file_bytes: int = 8 * MB               # per (host, tenant) dataset
    seed: int = 42
    audit: bool = False
    # Total prefetch budget per backend when n_tenants > 1 (QoS is
    # attached only then; a single tenant needs no arbitration and a
    # no-manager run keeps the byte-identical-default contract).
    qos_rate_mb_per_s: float = 4096.0
    traffic: TrafficSpec = field(default_factory=TrafficSpec)

    def __post_init__(self):
        if self.n_hosts <= 0 or self.n_backends <= 0 \
                or self.n_tenants <= 0:
            raise ValueError(
                f"fleet needs positive counts: hosts={self.n_hosts}, "
                f"backends={self.n_backends}, tenants={self.n_tenants}")

    def describe(self) -> str:
        return (f"{self.n_hosts}h x {self.n_tenants}t "
                f"/{self.n_backends}b [{self.approach}]")


def _tenant_names(n: int) -> List[str]:
    return [f"t{i}" for i in range(n)]


def _request_proc(host: Host, handle, plan, io_bytes: int,
                  refs: dict):
    """One open-loop request: issued at its arrival instant regardless
    of what else is in flight; latency = completion − arrival."""
    sim = host.sim
    t_arrive = sim.now
    kind, idx, count = plan
    nbytes = hits = misses = 0
    for i in range(count):
        result = yield from host.runtime.pread(
            handle, (idx + i) * io_bytes, io_bytes)
        nbytes += result.nbytes
        hits += result.hit_pages
        misses += result.miss_pages
    host.note_request(nbytes, sim.now - t_arrive,
                      hit_pages=hits, miss_pages=misses)
    refs["outstanding"] -= 1
    if refs["outstanding"] == 0 and refs["closing"]:
        yield from host.runtime.close(handle)


def _tenant_traffic(host: Host, path: str, n_ios: int,
                    spec: TrafficSpec, seed: int):
    """The arrival generator for one (host, tenant) stream.

    All randomness happens here, in arrival order — request processes
    receive fully-drawn plans, so completion order can never leak into
    the RNG stream (the open-loop determinism contract).
    """
    sim = host.sim
    rng = random.Random(seed)
    arrivals = arrival_stream(spec, rng)
    handle = yield from host.runtime.open(path, HINT_NORMAL)
    refs = {"outstanding": 0, "closing": False}
    scan_ios = max(1, min(spec.scan_ios, n_ios))
    hot_ios = max(1, int(n_ios * spec.hot_frac))
    now = 0.0
    for seq, t in enumerate(arrivals):
        if t > now:
            yield sim.timeout(t - now)
            now = t
        kind = spec.mix.draw(rng)
        if kind == "scan":
            plan = (kind, rng.randrange(max(1, n_ios - scan_ios + 1)),
                    scan_ios)
        elif kind == "hot":
            plan = (kind, rng.randrange(hot_ios), 1)
        else:
            plan = (kind, rng.randrange(n_ios), 1)
        refs["outstanding"] += 1
        sim.process(
            _request_proc(host, handle, plan, spec.io_bytes, refs),
            name=f"{host.name}/{path}/req{seq}")
    refs["closing"] = True
    if refs["outstanding"] == 0:
        yield from host.runtime.close(handle)


def _fleet_audit(auditor: Auditor, hosts: List[Host],
                 backends: list, managers: List[QosManager],
                 now: float) -> None:
    """Fleet-wide invariant audit; raises AuditError on violations."""
    for host in hosts:
        kernel = host.kernel
        auditor.check_now(kernel)
        for inode_id, bm in kernel.vfs._inflight.items():
            if bm.count_set():
                auditor.violations.append(
                    f"{host.name}: inflight bitmap not empty for "
                    f"inode {inode_id}")
        for inode_id, bm in kernel.vfs._planned.items():
            if bm.count_set():
                auditor.violations.append(
                    f"{host.name}: planned bitmap not empty for "
                    f"inode {inode_id}")
    # Global byte conservation: the auditor's fill counter spans every
    # host, so the equality holds only over the *sum* of backends.
    consumed = sum(d.stats.read_bytes + d.stats.failed_read_bytes
                   + d.stats.aborted_read_bytes for d in backends)
    issued = auditor.fill_read_bytes \
        + sum(d.stats.retried_read_bytes for d in backends)
    if consumed != issued:
        auditor.violations.append(
            f"fleet device bytes not conserved: backends consumed "
            f"{consumed} read bytes but hosts issued {issued}")
    if now > 0:
        for i, device in enumerate(backends):
            util = device.stats.utilization(now)
            if util > 1.0 + 1e-9:
                auditor.violations.append(
                    f"backend{i} channel utilization {util:.3f} > 1.0")
    if managers:
        admitted = sum(state.admitted_blocks
                       for manager in managers
                       for state in manager.tenants.values())
        counted = sum(h.kernel.registry.get("cross.prefetch_blocks")
                      for h in hosts)
        if admitted != counted:
            auditor.violations.append(
                f"fleet qos admission not conserved: managers "
                f"admitted {admitted} blocks but hosts counted "
                f"{counted:g}")
        for manager in managers:
            for name, state in manager.tenants.items():
                if state.inflight != 0:
                    auditor.violations.append(
                        f"qos tenant {name!r} still has "
                        f"{state.inflight} prefetches in flight")
    auditor.final_check(None)


def _fingerprint(host_rows: List[dict], sim: Simulator) -> str:
    doc = {"events": sim.events_processed,
           "time_us": round(sim.now, 6),
           "hosts": host_rows}
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()).hexdigest()


def run_fleet(config: FleetConfig) -> dict:
    """Run one fleet configuration to completion; returns a dict with
    ``metrics`` (fleet ApproachMetrics), ``hosts`` (per-host
    summaries), ``backends`` (per-backend device counters), and
    ``fingerprint`` (sha256 over per-host counters + engine totals —
    equal fingerprints mean bit-identical runs)."""
    sim = Simulator()
    auditor = Auditor(sim) if config.audit else None

    backends = []
    managers: List[QosManager] = []
    device_factory = config.machine.device_factory()
    qos_spec = None
    if config.n_tenants > 1:
        qos_spec = QosSpec(
            tenants=tuple(TenantSpec(name)
                          for name in _tenant_names(config.n_tenants)),
            rate_mb_per_s=config.qos_rate_mb_per_s)
    from repro.sim.stats import StatsRegistry
    for _b in range(config.n_backends):
        device = device_factory(sim, StatsRegistry())
        if qos_spec is not None:
            manager = QosManager(sim, qos_spec,
                                 registry=device.registry)
            device.set_qos(manager)
            managers.append(manager)
        backends.append(device)

    hosts: List[Host] = []
    for h in range(config.n_hosts):
        spec = HostSpec(host_id=h, approach=config.approach,
                        memory_bytes=config.memory_bytes)
        hosts.append(Host.in_fleet(spec, config.machine, sim=sim,
                                   backend=backends[h % config.n_backends]))

    tenants = _tenant_names(config.n_tenants)
    for host in hosts:
        for t_idx, tenant in enumerate(tenants):
            path = f"/{host.name}/{tenant}"
            host.create_file(path, config.file_bytes,
                             tenant=tenant if managers else None)
            n_ios = max(1, config.file_bytes // config.traffic.io_bytes)
            sim.process(
                _tenant_traffic(
                    host, path, n_ios, config.traffic,
                    traffic_seed(config.seed, host.spec.host_id,
                                 t_idx)),
                name=f"{host.name}/{tenant}/traffic")

    sim.run()
    duration_us = sim.now
    for host in hosts:
        host.teardown()
    sim.run()  # drain flusher/worker interrupts enqueued by teardown

    if auditor is not None:
        _fleet_audit(auditor, hosts, backends, managers, sim.now)

    host_rows = [host.summary() for host in hosts]
    latencies: List[float] = []
    for host in hosts:
        latencies.extend(host.latencies_us)
    metrics = ApproachMetrics(
        approach=config.approach,
        duration_us=duration_us,
        bytes_read=sum(h.request_bytes for h in hosts),
        ops=sum(h.requests for h in hosts),
        hit_pages=sum(h.hit_pages for h in hosts),
        miss_pages=sum(h.miss_pages for h in hosts),
        lock_wait_us=sum(h.kernel.registry.total_lock_wait
                         for h in hosts),
        thread_time_us=duration_us * config.n_hosts,
        latencies_us=latencies,
    )
    metrics.extra["sim_events"] = sim.events_processed
    metrics.extra["sim_time_us"] = sim.now
    metrics.extra["n_hosts"] = config.n_hosts
    metrics.extra["n_tenants"] = config.n_tenants
    metrics.extra["n_backends"] = config.n_backends
    metrics.extra["audited"] = config.audit
    backend_rows = [{
        "backend": i,
        "read_bytes": d.stats.read_bytes,
        "reads": d.stats.reads,
    } for i, d in enumerate(backends)]
    return {
        "metrics": metrics,
        "hosts": host_rows,
        "backends": backend_rows,
        "fingerprint": _fingerprint(host_rows, sim),
    }
