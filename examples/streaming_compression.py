#!/usr/bin/env python3
"""Streaming compression under memory pressure (the Fig. 9b scenario).

Sixteen Snappy-style workers stream through a dataset larger than
memory, compressing each file.  Under low memory the aggressive
prefetch+eviction policy is what separates CrossPrefetch from both the
stock kernel and the whole-file loader: finished files are evicted on
the runtime's terms, freeing budget to prefetch the *next* files while
the CPU is busy compressing.

Run:  python examples/streaming_compression.py
"""

from repro.os import Kernel
from repro.runtimes import build_runtime
from repro.runtimes.factory import needs_cross
from repro.workloads.snappy import SnappyConfig, run_snappy

MB = 1 << 20

DATASET = 512 * MB


def main():
    print("Snappy: 8 threads compressing a 512 MB dataset of 16 MB "
          "files\n")
    header = f"{'mem:data':>8}"
    approaches = ("APPonly", "OSonly", "CrossP[+predict+opt]",
                  "CrossP[+fetchall+opt]")
    for approach in approaches:
        header += f"  {approach:>22}"
    print(header + "   (MB/s)")
    print("-" * len(header))

    for ratio_name, num, den in (("1:6", 1, 6), ("1:2", 1, 2),
                                 ("1:1", 1, 1)):
        row = f"{ratio_name:>8}"
        for approach in approaches:
            kernel = Kernel(memory_bytes=DATASET * num // den,
                            cross_enabled=needs_cross(approach))
            runtime = build_runtime(approach, kernel)
            # Scale the 30 s inactivity rule down to this run's length.
            if hasattr(runtime, "config"):
                runtime.config.inactive_file_us = 20_000.0
            cfg = SnappyConfig(nthreads=8, total_bytes=DATASET,
                               file_bytes=16 * MB)
            metrics = run_snappy(kernel, runtime, cfg)
            runtime.teardown()
            kernel.shutdown()
            row += f"  {metrics.throughput_mbps:>22.1f}"
        print(row)

    print("\nWith two 8 MB reads per file, eight concurrent streams "
          "saturate the simulated\ndevice for every approach, so the "
          "approaches sit near parity (see the Fig. 9b\nnotes in "
          "EXPERIMENTS.md); at the tightest ratio the aggressive "
          "evictor's work\nshows up as a small cost rather than the "
          "paper's +31% win.")


if __name__ == "__main__":
    main()
