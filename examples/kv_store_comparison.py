#!/usr/bin/env python3
"""A RocksDB-style key-value store under every Table-2 approach.

This is the paper's intro scenario: a production KV store that disables
OS prefetching for "random" workloads (APPonly), versus delegating to
the OS (OSonly), versus CrossPrefetch.  The workload is db_bench's
multireadrandom — batched-but-random point gets from concurrent client
threads over shared SST files.

Run:  python examples/kv_store_comparison.py
"""

from repro.os import Kernel
from repro.runtimes import build_runtime
from repro.runtimes.factory import needs_cross
from repro.workloads.dbbench import DbBenchConfig, run_dbbench
from repro.workloads.lsm import DbConfig

MB = 1 << 20

APPROACHES = (
    "APPonly",               # stock RocksDB behaviour
    "OSonly",                # trust the kernel
    "CrossP[+predict]",      # cross-layered prediction, OS limits kept
    "CrossP[+predict+opt]",  # + relaxed limits + memory-aware modes
    "CrossP[+fetchall+opt]", # the idealistic whole-file loader
)


def main():
    print("db_bench multireadrandom: 8 client threads, "
          "200k keys x 1 KB, DB ~75% of RAM\n")
    print(f"{'approach':<24} {'kops/s':>10} {'miss%':>8} "
          f"{'device MB':>10} {'prefetch MB':>12}")
    print("-" * 68)
    baseline = None
    for approach in APPROACHES:
        kernel = Kernel(memory_bytes=280 * MB,
                        cross_enabled=needs_cross(approach))
        runtime = build_runtime(approach, kernel)
        cfg = DbBenchConfig(
            pattern="multireadrandom", nthreads=8, ops_per_thread=600,
            db=DbConfig(num_keys=200_000))
        metrics = run_dbbench(kernel, runtime, cfg)
        runtime.teardown()
        dev = kernel.device.stats
        if baseline is None:
            baseline = metrics.kops
        print(f"{approach:<24} {metrics.kops:>10.1f} "
              f"{metrics.miss_pct:>8.1f} "
              f"{dev.read_bytes / MB:>10.0f} "
              f"{dev.prefetch_bytes / MB:>12.0f}"
              f"   ({metrics.kops / baseline:.2f}x)")
    print("\nThe CrossP rows show the paper's progression: cache-state "
          "visibility cuts\nredundant work, and the memory-budget mode "
          "bulk-loads the hot SSTs while\nmemory is free, eliminating "
          "compulsory misses.")


if __name__ == "__main__":
    main()
