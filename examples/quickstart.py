#!/usr/bin/env python3
"""Quickstart: the CrossPrefetch stack in ~60 lines.

Builds a simulated machine, runs the same sequential+random workload
under stock Linux readahead (OSonly) and under CrossPrefetch, and prints
the throughput and cache-miss comparison.

Run:  python examples/quickstart.py
"""

from repro.os import Kernel
from repro.runtimes import HINT_SEQUENTIAL, build_runtime
from repro.runtimes.factory import needs_cross

KB = 1 << 10
MB = 1 << 20


def workload(kernel, runtime):
    """One thread streams a file backward — readahead's worst case."""
    kernel.create_file("/data/trace.bin", 64 * MB)
    stats = {}

    def reader():
        handle = yield from runtime.open("/data/trace.bin",
                                         HINT_SEQUENTIAL)
        t0 = kernel.now
        hits = misses = total = 0
        # Read the file backward in 16 KB records (e.g. a log scanned
        # newest-first).  Stock kernel readahead cannot help here;
        # CROSS-LIB's predictor detects the backward stream.
        pos = handle.size
        while pos > 0:
            pos -= 16 * KB
            result = yield from runtime.pread(handle, pos, 16 * KB)
            total += result.nbytes
            hits += result.hit_pages
            misses += result.miss_pages
        yield from runtime.close(handle)
        stats.update(total=total, hits=hits, misses=misses,
                     seconds=(kernel.now - t0) / 1e6)

    kernel.sim.process(reader())
    kernel.run()
    return stats


def main():
    print(f"{'approach':<24} {'MB/s':>10} {'miss%':>8} {'ri calls':>10}")
    print("-" * 56)
    for approach in ("OSonly", "CrossP[+predict+opt]"):
        kernel = Kernel(memory_bytes=256 * MB,
                        cross_enabled=needs_cross(approach))
        runtime = build_runtime(approach, kernel)
        stats = workload(kernel, runtime)
        runtime.teardown()
        mbps = stats["total"] / MB / stats["seconds"]
        miss_pct = 100 * stats["misses"] / (stats["hits"]
                                            + stats["misses"])
        ri = kernel.registry.get("syscalls.readahead_info")
        print(f"{approach:<24} {mbps:>10.1f} {miss_pct:>8.1f} {ri:>10.0f}")
    print("\nCrossPrefetch detects the backward stream and prefetches it "
          "in large requests;\nstock readahead treats every access as "
          "random and pays a device round trip each.")


if __name__ == "__main__":
    main()
