#!/usr/bin/env python3
"""HPC-style shared-file analytics: the paper's microbenchmark scenario.

Many worker threads share one large data file and process non-overlapping
partitions in random segment order — some segments scanned forward, some
backward (think adjoint solvers or trace post-processing).  The dataset
is ~2x memory, so prefetching policy decides everything.

Also demonstrates direct use of the lower-level API: custom CROSS-LIB
configuration and per-run telemetry.

Run:  python examples/hpc_shared_file.py
"""

from repro.crosslib.config import CrossLibConfig
from repro.os import Kernel
from repro.runtimes import build_runtime
from repro.runtimes.factory import needs_cross
from repro.workloads.microbench import MicrobenchConfig, run_microbench

MB = 1 << 20


def run(approach, crosslib_config=None):
    kernel = Kernel(memory_bytes=192 * MB,
                    cross_enabled=needs_cross(approach))
    runtime = build_runtime(approach, kernel, crosslib_config)
    cfg = MicrobenchConfig(
        nthreads=8,
        total_bytes=412 * MB,     # ~2.15x memory, like the paper
        pattern="rand",
        sharing="shared",
        segment_bytes=1 * MB,
        backward_fraction=0.4,
    )
    metrics = run_microbench(kernel, runtime, cfg)
    runtime.teardown()
    extra = {
        "ri": kernel.registry.get("syscalls.readahead_info"),
        "elided": kernel.registry.get("cross.elided_prefetch"),
        "device_mb": kernel.device.stats.read_bytes / MB,
    }
    kernel.shutdown()
    return metrics, extra


def main():
    print("8 threads, one 412 MB shared file on a 192 MB machine, "
          "random segment order, 40% backward\n")
    print(f"{'approach':<26} {'MB/s':>9} {'miss%':>7} {'lock%':>7} "
          f"{'ri':>7} {'elided':>7} {'devMB':>7}")
    print("-" * 74)
    for approach in ("APPonly", "OSonly", "CrossP[+predict]",
                     "CrossP[+predict+opt]", "CrossP[+fetchall+opt]"):
        metrics, extra = run(approach)
        print(f"{approach:<26} {metrics.throughput_mbps:>9.1f} "
              f"{metrics.miss_pct:>7.1f} {metrics.lock_pct:>7.1f} "
              f"{extra['ri']:>7.0f} {extra['elided']:>7.0f} "
              f"{extra['device_mb']:>7.0f}")

    # Custom tuning through the public CROSS-LIB config: more prefetch
    # workers and a bigger optimistic open-time prefetch.
    tuned = CrossLibConfig(nr_workers=8,
                           aggressive_initial_bytes=8 * MB)
    metrics, extra = run("CrossP[+predict+opt]", tuned)
    print(f"{'CrossP[custom-tuned]':<26} {metrics.throughput_mbps:>9.1f} "
          f"{metrics.miss_pct:>7.1f} {metrics.lock_pct:>7.1f} "
          f"{extra['ri']:>7.0f} {extra['elided']:>7.0f} "
          f"{extra['device_mb']:>7.0f}")


if __name__ == "__main__":
    main()
