#!/usr/bin/env python
"""Coverage threshold gate (run in CI, stdlib only).

Reads the JSON report pytest-cov writes (``--cov-report=json:FILE``)
and gates the total line-coverage percentage against the committed
baseline ``COVERAGE_baseline.json``::

    {"min_percent": 55.0}

The gate is a floor, not a snapshot: PRs fail only when coverage drops
below the committed minimum, and the minimum is ratcheted explicitly
with ``--update`` (which rounds the measured total *down* to one
decimal, leaving headroom for line-count noise).

The checker itself has no third-party dependencies, so it runs in any
environment — only *producing* the report needs pytest-cov (CI
installs it; the container image does not ship it).

Usage::

    python tools/check_coverage.py --report coverage.json
    python tools/check_coverage.py --report coverage.json --update
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO, "COVERAGE_baseline.json")


def load_percent(report_path: str) -> tuple[float, dict]:
    """Total percent covered + per-file summaries from a pytest-cov
    JSON report."""
    with open(report_path, encoding="utf-8") as fh:
        doc = json.load(fh)
    totals = doc.get("totals")
    if not isinstance(totals, dict) or "percent_covered" not in totals:
        raise ValueError(
            f"{report_path}: not a coverage JSON report "
            f"(missing totals.percent_covered)")
    return float(totals["percent_covered"]), doc.get("files", {})


def worst_files(files: dict, limit: int = 5) -> list[tuple[str, float]]:
    """The least-covered source files — the PR report's call to action."""
    ranked = []
    for path, entry in files.items():
        summary = entry.get("summary", {})
        pct = summary.get("percent_covered")
        statements = summary.get("num_statements", 0)
        if pct is None or statements < 10:     # skip trivial files
            continue
        ranked.append((path, float(pct)))
    ranked.sort(key=lambda item: (item[1], item[0]))
    return ranked[:limit]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default="coverage.json",
                        metavar="FILE",
                        help="coverage JSON report to check "
                             "(default coverage.json)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        metavar="FILE",
                        help="committed threshold file "
                             "(default COVERAGE_baseline.json)")
    parser.add_argument("--update", action="store_true",
                        help="ratchet: write the measured total (rounded "
                             "down to 0.1) into the baseline file")
    args = parser.parse_args(argv)

    try:
        percent, files = load_percent(args.report)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"check_coverage: {exc}", file=sys.stderr)
        return 2

    if args.update:
        floor = int(percent * 10) / 10.0
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump({"min_percent": floor}, fh, indent=2)
            fh.write("\n")
        print(f"check_coverage: baseline updated to {floor:.1f}% "
              f"(measured {percent:.2f}%)")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        minimum = float(baseline["min_percent"])
    except (OSError, KeyError, TypeError, ValueError,
            json.JSONDecodeError) as exc:
        print(f"check_coverage: bad baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2

    print(f"check_coverage: total {percent:.2f}% "
          f"(baseline floor {minimum:.1f}%)")
    for path, pct in worst_files(files):
        print(f"  least covered: {path}: {pct:.1f}%")
    if percent < minimum:
        print(f"check_coverage: FAIL — coverage {percent:.2f}% fell "
              f"below the committed floor {minimum:.1f}%; add tests or "
              f"(deliberately) lower COVERAGE_baseline.json",
              file=sys.stderr)
        return 1
    print("check_coverage: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
