#!/usr/bin/env python
"""Docs consistency checker (run in CI).

Three checks over the repo's markdown (README.md, EXPERIMENTS.md,
ROADMAP.md, DESIGN.md, docs/*.md):

1. **Links** — every relative markdown link ``[text](target)`` must
   resolve to an existing file or directory (``#fragment`` suffixes
   stripped; ``http(s)://``, ``mailto:`` and pure-anchor links are
   skipped).
2. **CLI flags** — every ``--flag`` token mentioned in the docs must be
   an option the ``repro`` CLI actually defines somewhere in
   ``repro.cli.build_parser()`` (subparsers included), so renaming or
   removing a flag without updating the docs fails the build.  Flags
   belonging to other tools (pytest, pip) live in ``FLAG_ALLOWLIST``.
3. **Module map** — every module under ``src/repro/`` must be
   reachable from the ``docs/index.md`` module map, either by exact
   backticked name (```repro.os.vfs```) or through a package wildcard
   (```repro.workloads.*```), so new modules land in the index and
   renames cannot silently orphan a row.

Exit status 0 when clean; 1 with one message per problem otherwise.

Usage::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_GLOBS = ("README.md", "EXPERIMENTS.md", "ROADMAP.md", "DESIGN.md",
             "PAPER.md", "CHANGES.md")
DOCS_DIR = "docs"

# Flags that appear in the docs but belong to tools other than the
# repro CLI (pytest/pytest-benchmark invocations, pip, etc.).
FLAG_ALLOWLIST = {
    "--benchmark-only",
}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]+)")
MODULE_RE = re.compile(r"`(repro(?:\.[\w*]+)+)`")

MODULE_MAP_DOC = os.path.join(DOCS_DIR, "index.md")


def doc_files() -> list[str]:
    files = [f for f in DOC_GLOBS
             if os.path.isfile(os.path.join(REPO, f))]
    docs = os.path.join(REPO, DOCS_DIR)
    if os.path.isdir(docs):
        files.extend(os.path.join(DOCS_DIR, f)
                     for f in sorted(os.listdir(docs))
                     if f.endswith(".md"))
    return files


def cli_flags() -> set[str]:
    """Every option string any repro subparser defines."""
    from repro.cli import build_parser

    flags: set[str] = set()

    def walk(parser: argparse.ArgumentParser) -> None:
        for action in parser._actions:
            flags.update(s for s in action.option_strings
                         if s.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    walk(sub)

    walk(build_parser())
    return flags


def check_links(relpath: str, text: str, problems: list[str]) -> None:
    base = os.path.dirname(os.path.join(REPO, relpath))
    for lineno, line in enumerate(text.splitlines(), 1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:        # pure anchor
                continue
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                problems.append(
                    f"{relpath}:{lineno}: broken link "
                    f"({target!r} -> {os.path.relpath(resolved, REPO)})")


def check_flags(relpath: str, text: str, known: set[str],
                problems: list[str]) -> None:
    for lineno, line in enumerate(text.splitlines(), 1):
        for flag in FLAG_RE.findall(line):
            if flag in known or flag in FLAG_ALLOWLIST:
                continue
            problems.append(
                f"{relpath}:{lineno}: flag {flag} is not defined by "
                f"any repro subcommand (rename the doc or add the "
                f"flag to repro.cli)")


def repro_modules() -> list[str]:
    """Every leaf module under src/repro (packages and mains skipped)."""
    src = os.path.join(REPO, "src")
    modules = []
    for dirpath, _dirnames, filenames in os.walk(
            os.path.join(src, "repro")):
        for name in filenames:
            if not name.endswith(".py") \
                    or name in ("__init__.py", "__main__.py"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), src)
            modules.append(rel[:-3].replace(os.sep, "."))
    return sorted(modules)


def check_module_map(problems: list[str]) -> None:
    with open(os.path.join(REPO, MODULE_MAP_DOC),
              encoding="utf-8") as fh:
        mentions = set(MODULE_RE.findall(fh.read()))
    exact = {m for m in mentions if not m.endswith(".*")}
    prefixes = tuple(m[:-1] for m in mentions if m.endswith(".*"))
    for module in repro_modules():
        if module in exact \
                or (prefixes and module.startswith(prefixes)):
            continue
        problems.append(
            f"{MODULE_MAP_DOC}: module {module} is not reachable from "
            f"the module map (add a row naming it, or a package "
            f"wildcard like `{module.rsplit('.', 1)[0]}.*`)")


def main() -> int:
    problems: list[str] = []
    known = cli_flags()
    for relpath in doc_files():
        with open(os.path.join(REPO, relpath), encoding="utf-8") as fh:
            text = fh.read()
        check_links(relpath, text, problems)
        check_flags(relpath, text, known, problems)
    check_module_map(problems)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        for p in problems:
            print("  " + p)
        return 1
    n = len(doc_files())
    print(f"check_docs: {n} markdown files clean "
          f"({len(known)} CLI flags known)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
