#!/usr/bin/env python
"""Docs consistency checker (run in CI).

Two checks over the repo's markdown (README.md, EXPERIMENTS.md,
ROADMAP.md, DESIGN.md, docs/*.md):

1. **Links** — every relative markdown link ``[text](target)`` must
   resolve to an existing file or directory (``#fragment`` suffixes
   stripped; ``http(s)://``, ``mailto:`` and pure-anchor links are
   skipped).
2. **CLI flags** — every ``--flag`` token mentioned in the docs must be
   an option the ``repro`` CLI actually defines somewhere in
   ``repro.cli.build_parser()`` (subparsers included), so renaming or
   removing a flag without updating the docs fails the build.  Flags
   belonging to other tools (pytest, pip) live in ``FLAG_ALLOWLIST``.

Exit status 0 when clean; 1 with one message per problem otherwise.

Usage::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_GLOBS = ("README.md", "EXPERIMENTS.md", "ROADMAP.md", "DESIGN.md",
             "PAPER.md", "CHANGES.md")
DOCS_DIR = "docs"

# Flags that appear in the docs but belong to tools other than the
# repro CLI (pytest/pytest-benchmark invocations, pip, etc.).
FLAG_ALLOWLIST = {
    "--benchmark-only",
}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][a-z0-9-]+)")


def doc_files() -> list[str]:
    files = [f for f in DOC_GLOBS
             if os.path.isfile(os.path.join(REPO, f))]
    docs = os.path.join(REPO, DOCS_DIR)
    if os.path.isdir(docs):
        files.extend(os.path.join(DOCS_DIR, f)
                     for f in sorted(os.listdir(docs))
                     if f.endswith(".md"))
    return files


def cli_flags() -> set[str]:
    """Every option string any repro subparser defines."""
    from repro.cli import build_parser

    flags: set[str] = set()

    def walk(parser: argparse.ArgumentParser) -> None:
        for action in parser._actions:
            flags.update(s for s in action.option_strings
                         if s.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    walk(sub)

    walk(build_parser())
    return flags


def check_links(relpath: str, text: str, problems: list[str]) -> None:
    base = os.path.dirname(os.path.join(REPO, relpath))
    for lineno, line in enumerate(text.splitlines(), 1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:        # pure anchor
                continue
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                problems.append(
                    f"{relpath}:{lineno}: broken link "
                    f"({target!r} -> {os.path.relpath(resolved, REPO)})")


def check_flags(relpath: str, text: str, known: set[str],
                problems: list[str]) -> None:
    for lineno, line in enumerate(text.splitlines(), 1):
        for flag in FLAG_RE.findall(line):
            if flag in known or flag in FLAG_ALLOWLIST:
                continue
            problems.append(
                f"{relpath}:{lineno}: flag {flag} is not defined by "
                f"any repro subcommand (rename the doc or add the "
                f"flag to repro.cli)")


def main() -> int:
    problems: list[str] = []
    known = cli_flags()
    for relpath in doc_files():
        with open(os.path.join(REPO, relpath), encoding="utf-8") as fh:
            text = fh.read()
        check_links(relpath, text, problems)
        check_flags(relpath, text, known, problems)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        for p in problems:
            print("  " + p)
        return 1
    n = len(doc_files())
    print(f"check_docs: {n} markdown files clean "
          f"({len(known)} CLI flags known)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
